#ifndef QSCHED_SCHEDULER_WORKLOAD_DETECTOR_H_
#define QSCHED_SCHEDULER_WORKLOAD_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "sim/clock.h"

namespace qsched::sched {

/// Per-class view the detector produces at each harvest.
struct WorkloadSignal {
  /// Arrivals per second over the last interval.
  double arrival_rate = 0.0;
  /// Holt-smoothed level of the arrival rate.
  double level = 0.0;
  /// Holt-smoothed trend (rate change per interval).
  double trend = 0.0;
  /// True when the CUSUM detector flagged a shift this interval.
  bool change_detected = false;
  /// Predicted arrival rate `horizon` intervals ahead (level + h*trend,
  /// floored at zero).
  double predicted_rate = 0.0;
};

/// The *workload detection* half of the paper's framework (Section 2):
/// "identifies workload changes by monitoring and characterizing current
/// workloads and predicting future workload trends."
///
/// Implementation: per-class arrival counting per control interval,
/// Holt's double exponential smoothing for level + trend, and a
/// two-sided CUSUM on the smoothing residuals for abrupt-change
/// detection. The Scheduling Planner can consume the predictions to plan
/// proactively (see QuerySchedulerConfig::proactive_planning) and to
/// replan immediately on detected shifts.
class WorkloadDetector {
 public:
  struct Options {
    /// Holt smoothing weights.
    double level_alpha = 0.4;
    double trend_beta = 0.2;
    /// CUSUM drift allowance and alarm threshold, in units of the
    /// running residual scale.
    double cusum_drift = 0.5;
    double cusum_threshold = 4.0;
    /// Prediction horizon in intervals.
    int horizon_intervals = 2;
    /// EWMA weight for the residual scale estimate.
    double scale_alpha = 0.1;
  };

  WorkloadDetector() : WorkloadDetector(Options()) {}
  explicit WorkloadDetector(const Options& options);

  /// Counts one arriving query for `class_id` (called on every Submit).
  void RecordArrival(int class_id);

  /// Closes the current interval of length `interval_seconds`, updates
  /// the smoothers/detectors, and returns the per-class signals.
  std::map<int, WorkloadSignal> Harvest(double interval_seconds);

  /// Latest signal for a class (zeros when never seen).
  WorkloadSignal SignalFor(int class_id) const;

  /// Total arrivals recorded since construction.
  uint64_t arrivals_total() const { return arrivals_total_; }
  /// Number of change alarms raised so far (all classes).
  uint64_t changes_detected() const { return changes_detected_; }

 private:
  struct ClassState {
    uint64_t pending_arrivals = 0;
    bool initialized = false;
    double level = 0.0;
    double trend = 0.0;
    double residual_scale = 1.0;
    double cusum_pos = 0.0;
    double cusum_neg = 0.0;
    WorkloadSignal last_signal;
  };

  Options options_;
  std::map<int, ClassState> classes_;
  uint64_t arrivals_total_ = 0;
  uint64_t changes_detected_ = 0;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_WORKLOAD_DETECTOR_H_
