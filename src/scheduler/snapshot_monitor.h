#ifndef QSCHED_SCHEDULER_SNAPSHOT_MONITOR_H_
#define QSCHED_SCHEDULER_SNAPSHOT_MONITOR_H_

#include <unordered_map>

#include "engine/execution_engine.h"
#include "obs/telemetry.h"
#include "sim/clock.h"
#include "workload/client.h"

namespace qsched::sched {

/// The paper's OLTP monitoring path (Section 3.3): with Query Patroller
/// turned off for OLTP, the only information source is the DB2 snapshot
/// monitor, which records the execution time of the *most recently
/// finished* query per client. Taking a snapshot at a fixed interval and
/// averaging across clients estimates the OLTP class's average response
/// time. Each snapshot costs CPU proportional to the number of clients —
/// the paper's reason the interval "must not be too small".
class SnapshotMonitor {
 public:
  struct Options {
    double sample_interval_seconds = 10.0;
    /// CPU billed to the engine per client row read by one snapshot.
    double per_client_cpu_seconds = 0.0005;
    /// Rows not refreshed within this window are treated as disconnected
    /// clients and skipped — otherwise clients retired by a workload
    /// shift would freeze their last (typically busy-period) response
    /// into every future snapshot.
    double staleness_window_seconds = 30.0;
  };

  SnapshotMonitor(sim::Clock* simulator,
                  engine::ExecutionEngine* engine, const Options& options);

  SnapshotMonitor(const SnapshotMonitor&) = delete;
  SnapshotMonitor& operator=(const SnapshotMonitor&) = delete;

  /// Begins periodic sampling until `until` (simulated seconds).
  void Start(sim::SimTime until);

  /// Engine-side bookkeeping: every finished OLTP query overwrites its
  /// client's "last finished" row.
  void RecordCompletion(const workload::QueryRecord& record);

  /// Mean of the per-client response samples collected since the previous
  /// harvest; falls back to the most recent known average (or
  /// `fallback`) when no snapshot fired or no client had data.
  double HarvestAvgResponse(double fallback);

  uint64_t snapshots_taken() const { return snapshots_taken_; }
  double total_overhead_cpu_seconds() const {
    return total_overhead_cpu_seconds_;
  }

  /// Enables telemetry (nullptr = off): snapshot counter, sampled-client
  /// gauge and a histogram of per-snapshot average responses.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  void TakeSnapshot();

  sim::Clock* simulator_;
  engine::ExecutionEngine* engine_;
  Options options_;
  struct ClientRow {
    double response_seconds = 0.0;
    sim::SimTime updated_at = 0.0;
  };

  /// client id -> most recently finished query (with freshness stamp).
  std::unordered_map<int, ClientRow> last_response_;
  double sample_sum_ = 0.0;
  int sample_count_ = 0;
  double last_known_avg_ = -1.0;
  uint64_t snapshots_taken_ = 0;
  double total_overhead_cpu_seconds_ = 0.0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* snapshots_counter_ = nullptr;
  obs::Gauge* sampled_clients_gauge_ = nullptr;
  obs::Histogram* avg_response_hist_ = nullptr;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_SNAPSHOT_MONITOR_H_
