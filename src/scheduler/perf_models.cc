#include "scheduler/perf_models.h"

#include <algorithm>
#include <cmath>

namespace qsched::sched {

namespace {
constexpr double kMinVelocity = 1e-4;
constexpr double kMinLimit = 1e-6;
}  // namespace

double OlapVelocityModel::Predict(double velocity, double old_limit,
                                  double new_limit) {
  velocity = std::max(velocity, kMinVelocity);
  old_limit = std::max(old_limit, kMinLimit);
  new_limit = std::max(new_limit, kMinLimit);
  double predicted = velocity * new_limit / old_limit;
  return std::clamp(predicted, 0.0, 1.0);
}

OltpResponseModel::OltpResponseModel(const Options& options)
    : options_(options) {
  // Seed the regression with the prior as pseudo-observations.
  double x = options_.prior_delta_scale;
  sxx_ = options_.prior_weight * x * x;
  sxy_ = options_.prior_weight * x * (options_.prior_slope * x);
  slope_ = options_.prior_slope;
}

void OltpResponseModel::Update(double prev_response, double response,
                               double prev_limit, double limit) {
  if (!options_.online_updates) return;
  double dx = limit - prev_limit;
  if (std::abs(dx) < options_.min_delta_limit) return;
  double dy = response - prev_response;
  sxx_ = options_.forgetting * sxx_ + dx * dx;
  sxy_ = options_.forgetting * sxy_ + dx * dy;
  if (sxx_ > 0.0) {
    slope_ = std::clamp(sxy_ / sxx_, options_.min_slope, options_.max_slope);
  }
  ++updates_;
}

double OltpResponseModel::Predict(double response, double old_limit,
                                  double new_limit) const {
  double predicted = response + slope_ * (new_limit - old_limit);
  return std::max(0.0, predicted);
}

}  // namespace qsched::sched
