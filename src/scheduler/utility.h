#ifndef QSCHED_SCHEDULER_UTILITY_H_
#define QSCHED_SCHEDULER_UTILITY_H_

#include "scheduler/service_class.h"

namespace qsched::sched {

/// Utility function in the spirit of the authors' CASCON'06 framework:
/// it captures both the goal and the business importance of a class.
///
/// Piecewise-linear in the goal ratio p (p >= 1 == goal met), with a
/// saturation margin m slightly above 1:
///   u(p) = imp * (1 - imp^e * (1-p))                 for p <= 1
///   u(p) = imp * (1 + mid_slope*(p-1))               for 1 < p <= m
///   u(p) = imp * (u(m)/imp + surplus*(p-m))          for p > m
///
/// While a class violates its goal, marginal utility per unit of
/// performance is importance^(1+e) (e = `violation_exponent`, default 1):
/// violations of important classes dominate the optimization, which is
/// how the paper's system hands Class 3 more than half of the system the
/// moment its goal breaks. Once the goal is met the slope drops to
/// `mid_slope` (a mild preference for headroom up to the margin m), and
/// beyond m the curve is nearly flat, so surplus performance is almost
/// worthless and resources flow back to whichever class violates. That
/// realizes the paper's "importance level is in effect only when the
/// class violates its performance goals and is not synonymous with
/// priority".
class UtilityFunction {
 public:
  explicit UtilityFunction(double surplus_slope = 0.05,
                           double saturation_ratio = 1.25,
                           double mid_slope = 0.3,
                           double violation_exponent = 1.0)
      : surplus_slope_(surplus_slope),
        saturation_ratio_(saturation_ratio < 1.0 ? 1.0 : saturation_ratio),
        mid_slope_(mid_slope),
        violation_exponent_(violation_exponent) {}

  /// Utility of `spec` at measured performance `measured` (velocity for
  /// OLAP goals, seconds for response-time goals).
  double Evaluate(const ServiceClassSpec& spec, double measured) const;

  /// Utility directly from a goal ratio (see ServiceClassSpec::GoalRatio).
  double FromGoalRatio(const ServiceClassSpec& spec, double ratio) const;

  double surplus_slope() const { return surplus_slope_; }
  double saturation_ratio() const { return saturation_ratio_; }
  double mid_slope() const { return mid_slope_; }
  double violation_exponent() const { return violation_exponent_; }

 private:
  double surplus_slope_;
  double saturation_ratio_;
  double mid_slope_;
  double violation_exponent_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_UTILITY_H_
