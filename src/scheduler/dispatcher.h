#ifndef QSCHED_SCHEDULER_DISPATCHER_H_
#define QSCHED_SCHEDULER_DISPATCHER_H_

#include <deque>
#include <map>

#include "obs/telemetry.h"
#include "qp/interceptor.h"
#include "scheduler/solver.h"

namespace qsched::sched {

/// The paper's Dispatcher: one FIFO queue per service class; a queued
/// query is released for execution as long as adding it keeps the sum of
/// costs of the class's executing queries within the class cost limit of
/// the current scheduling plan.
///
/// A query whose cost alone exceeds its class limit would starve under the
/// strict rule, so a class with nothing running may always release its
/// head ("min-one" rule); DB2 QP behaves the same for over-limit queries.
///
/// Thread-safety: not internally synchronized; same contract as the
/// Interceptor it drives — single-threaded under the DES, serialized by
/// the rt runtime's core lock otherwise. SetPlan is therefore atomic
/// with respect to concurrent submissions in both modes.
class Dispatcher {
 public:
  explicit Dispatcher(qp::Interceptor* interceptor);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Installs a new plan and immediately releases whatever now fits.
  void SetPlan(const SchedulingPlan& plan);
  const SchedulingPlan& plan() const { return plan_; }

  /// Wire these to the interceptor's callbacks.
  void OnArrived(const qp::QueryInfoRecord& record);
  void OnFinished(const qp::QueryInfoRecord& record);
  /// Drops a cancelled query from its class queue.
  void OnCancelled(const qp::QueryInfoRecord& record);

  int QueuedFor(int class_id) const;
  int TotalQueued() const;
  uint64_t released_total() const { return released_total_; }

  /// Enables telemetry (nullptr = off): arrival/release counters and a
  /// per-class queue-depth gauge kept current on every queue mutation.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct Waiting {
    uint64_t query_id;
    double cost;
  };

  void TryRelease();
  void UpdateQueueGauge(int class_id);

  qp::Interceptor* interceptor_;
  SchedulingPlan plan_;
  std::map<int, std::deque<Waiting>> queues_;
  uint64_t released_total_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* arrived_counter_ = nullptr;
  obs::Counter* released_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  std::map<int, obs::Gauge*> queue_depth_gauges_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_DISPATCHER_H_
