#ifndef QSCHED_SCHEDULER_PERF_MODELS_H_
#define QSCHED_SCHEDULER_PERF_MODELS_H_

namespace qsched::sched {

/// The paper's OLAP class performance model (Section 3.2):
///   V_i^k = min(1, V_i^{k-1} * C_i^k / C_i^{k-1})
/// — query velocity scales proportionally with the class cost limit,
/// saturating at 1.
class OlapVelocityModel {
 public:
  /// Predicted velocity under `new_limit` given the velocity `velocity`
  /// measured while the limit was `old_limit`. Non-positive limits and
  /// velocities are clamped to small positives.
  static double Predict(double velocity, double old_limit,
                        double new_limit);
};

/// The paper's OLTP performance model (Section 3.2):
///   t^k = t^{k-1} + s * (C^k - C^{k-1})
/// where C is the total OLAP cost limit and s is a slope fitted online.
/// The slope is estimated with exponentially-weighted recursive least
/// squares over observed (delta-limit, delta-response) pairs, seeded with
/// a prior so the controller acts sensibly before data accumulates.
class OltpResponseModel {
 public:
  struct Options {
    /// Prior slope (seconds of added OLTP response per timeron of OLAP
    /// cost limit). The paper obtains s *offline* by linear regression
    /// over Fig. 2-style measurements; the reproduction's Fig. 2 gives
    /// ~7.5e-7 s/timeron at the default calibration.
    double prior_slope = 7.5e-7;
    /// When false (default, the paper's approach), s stays at the fitted
    /// constant. When true, s is re-estimated online from control-loop
    /// observations — the ablation bench shows why this is fragile:
    /// workload swings confound the regression (reverse causation).
    bool online_updates = false;
    /// Strength of the prior, expressed as equivalent sample weight.
    double prior_weight = 4.0;
    /// Magnitude of a typical cost-limit change; the prior is injected as
    /// pseudo-observations at this scale so real observations (tens of
    /// thousands of timerons) neither swamp nor ignore it.
    double prior_delta_scale = 30000.0;
    /// Forgetting factor in (0,1]; 1 = never forget.
    double forgetting = 0.98;
    /// Slope clamp: the physical sign is known (more admitted OLAP work
    /// can only slow OLTP down).
    double min_slope = 1.0e-9;
    double max_slope = 1.0e-3;
    /// Updates with |delta limit| below this are ignored (no signal).
    double min_delta_limit = 1.0;
  };

  OltpResponseModel() : OltpResponseModel(Options()) {}
  explicit OltpResponseModel(const Options& options);

  /// Incorporates one control-interval observation: response moved from
  /// `prev_response` to `response` while the OLAP cost limit moved from
  /// `prev_limit` to `limit`.
  void Update(double prev_response, double response, double prev_limit,
              double limit);

  /// Predicted response time under `new_limit` given `response` measured
  /// at `old_limit`. Clamped to be non-negative.
  double Predict(double response, double old_limit, double new_limit) const;

  double slope() const { return slope_; }
  int updates() const { return updates_; }

 private:
  Options options_;
  /// Weighted least squares state for y = s*x through the origin:
  /// slope = sxy / sxx.
  double sxx_ = 0.0;
  double sxy_ = 0.0;
  double slope_ = 0.0;
  int updates_ = 0;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_PERF_MODELS_H_
