#include "scheduler/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::sched {

QueryScheduler::QueryScheduler(sim::Clock* simulator,
                               engine::ExecutionEngine* engine,
                               const ServiceClassSet* classes,
                               const QuerySchedulerConfig& config)
    : simulator_(simulator),
      engine_(engine),
      classes_(classes),
      config_(config),
      interceptor_(simulator, engine, config.interceptor),
      dispatcher_(&interceptor_),
      monitor_(simulator),
      snapshot_(simulator, engine, config.snapshot),
      detector_(config.detector),
      oltp_model_(config.oltp_model),
      solver_(config.solver),
      greedy_(config.greedy) {
  interceptor_.set_on_arrived([this](const qp::QueryInfoRecord& record) {
    dispatcher_.OnArrived(record);
  });
  interceptor_.set_on_finished([this](const qp::QueryInfoRecord& record) {
    dispatcher_.OnFinished(record);
  });
  interceptor_.set_on_cancelled(
      [this](const qp::QueryInfoRecord& record) {
        dispatcher_.OnCancelled(record);
      });
  // Neutral initial measurements: every class assumed exactly at goal.
  for (const ServiceClassSpec& spec : classes_->classes()) {
    measured_[spec.class_id] = spec.goal_value;
  }
  if (config_.telemetry != nullptr) {
    telemetry_ = config_.telemetry;
    interceptor_.set_telemetry(telemetry_);
    dispatcher_.set_telemetry(telemetry_);
    monitor_.set_telemetry(telemetry_);
    snapshot_.set_telemetry(telemetry_);
    obs::Registry& reg = telemetry_->registry;
    planning_cycles_counter_ =
        reg.GetCounter("qsched_planner_cycles_total");
    planner_utility_gauge_ = reg.GetGauge("qsched_planner_utility");
    for (const ServiceClassSpec& spec : classes_->classes()) {
      std::string labels = StrPrintf("class=\"%d\"", spec.class_id);
      ClassTelemetry& handles = class_telemetry_[spec.class_id];
      handles.submitted =
          reg.GetCounter("qsched_scheduler_submitted_total", labels);
      handles.slo_goal = reg.GetGauge("qsched_slo_goal", labels);
      handles.slo_measured = reg.GetGauge("qsched_slo_measured", labels);
      handles.slo_goal_ratio =
          reg.GetGauge("qsched_slo_goal_ratio", labels);
      handles.cost_limit =
          reg.GetGauge("qsched_cost_limit_timerons", labels);
      handles.slo_attainment =
          reg.GetGauge("qsched_slo_attainment", labels);
      handles.slo_goal->Set(spec.goal_value);
      handles.slo_measured->Set(measured_[spec.class_id]);
      handles.slo_goal_ratio->Set(
          spec.GoalRatio(measured_[spec.class_id]));
    }
  }
  dispatcher_.SetPlan(InitialPlan());
  if (telemetry_ != nullptr) {
    for (const auto& [class_id, limit] : dispatcher_.plan().cost_limits) {
      auto it = class_telemetry_.find(class_id);
      if (it != class_telemetry_.end()) it->second.cost_limit->Set(limit);
    }
  }
}

SchedulingPlan QueryScheduler::InitialPlan() const {
  SchedulingPlan plan;
  size_t n = classes_->size();
  if (n == 0) return plan;
  double equal = 1.0 / static_cast<double>(n);
  for (const ServiceClassSpec& spec : classes_->classes()) {
    double share = std::max(spec.min_share, equal);
    plan.cost_limits[spec.class_id] = share * config_.system_cost_limit;
  }
  // Normalize to the system cost limit.
  double total = plan.Total();
  if (total > 0.0) {
    for (auto& [id, limit] : plan.cost_limits) {
      limit *= config_.system_cost_limit / total;
    }
  }
  return plan;
}

void QueryScheduler::Start(sim::SimTime until) {
  snapshot_.Start(until);
  double interval = config_.control_interval_seconds;
  QSCHED_CHECK(interval > 0.0) << "control interval must be positive";
  for (double t = interval; t <= until; t += interval) {
    simulator_->ScheduleAt(t, [this] { PlanOnce(); });
  }
}

bool QueryScheduler::Classify(const workload::Query& query) const {
  return classes_->Find(query.class_id) != nullptr;
}

void QueryScheduler::Submit(const workload::Query& query,
                            CompleteFn on_complete) {
  if (telemetry_ != nullptr) {
    telemetry_->spans.OnSubmit(
        query.id, query.class_id,
        query.type == workload::WorkloadType::kOltp, simulator_->Now());
  }
  QSCHED_CHECK(Classify(query))
      << "query with unknown service class " << query.class_id;
  if (telemetry_ != nullptr) {
    telemetry_->spans.OnClassify(query.id, simulator_->Now());
    auto it = class_telemetry_.find(query.class_id);
    if (it != class_telemetry_.end()) it->second.submitted->Inc();
  }
  detector_.RecordArrival(query.class_id);
  bool direct = query.type != workload::WorkloadType::kOltp ||
                config_.control_oltp_directly;
  if (!direct) {
    // Paper path: OLTP bypasses interception; the snapshot monitor is the
    // only performance source for the class.
    interceptor_.Bypass(
        query, [this, on_complete = std::move(on_complete)](
                   const workload::QueryRecord& record) {
          snapshot_.RecordCompletion(record);
          if (on_complete) on_complete(record);
        });
    return;
  }
  interceptor_.Intercept(
      query, [this, on_complete = std::move(on_complete)](
                 const workload::QueryRecord& record) {
        monitor_.AddRecord(record);
        if (on_complete) on_complete(record);
      });
}

double QueryScheduler::OlapTotalOf(const SchedulingPlan& plan) const {
  double total = 0.0;
  for (const ServiceClassSpec& spec : classes_->classes()) {
    if (spec.type == workload::WorkloadType::kOlap) {
      total += plan.LimitFor(spec.class_id);
    }
  }
  return total;
}

void QueryScheduler::PlanOnce() {
  ++planning_cycles_;
  if (config_.planning_cpu_seconds > 0.0) {
    engine_->cpu_pool().Submit(config_.planning_cpu_seconds, [] {});
  }

  std::map<int, ClassIntervalStats> stats = monitor_.Harvest();
  std::map<int, WorkloadSignal> signals =
      detector_.Harvest(config_.control_interval_seconds);
  const SchedulingPlan& current = dispatcher_.plan();
  double olap_total_now = OlapTotalOf(current);

  // Refresh per-class measurements. A detected workload shift makes the
  // newest measurement authoritative (the smoothed history is stale).
  // `raw` keeps the un-smoothed interval values for the audit trail.
  double base_alpha = std::clamp(config_.measurement_smoothing, 0.01, 1.0);
  double oltp_response = -1.0;
  std::map<int, double> raw;
  for (const ServiceClassSpec& spec : classes_->classes()) {
    double alpha = base_alpha;
    auto signal_it = signals.find(spec.class_id);
    if (config_.proactive_planning && signal_it != signals.end() &&
        signal_it->second.change_detected) {
      alpha = 1.0;
    }
    raw[spec.class_id] = -1.0;
    if (spec.type == workload::WorkloadType::kOlap) {
      auto it = stats.find(spec.class_id);
      if (it != stats.end() && it->second.completed > 0) {
        raw[spec.class_id] = it->second.mean_velocity;
        measured_[spec.class_id] =
            alpha * it->second.mean_velocity +
            (1.0 - alpha) * measured_[spec.class_id];
      }
      continue;
    }
    // OLTP measurement source depends on the control mode.
    if (config_.control_oltp_directly) {
      auto it = stats.find(spec.class_id);
      if (it != stats.end() && it->second.completed > 0) {
        raw[spec.class_id] = it->second.mean_response_seconds;
        measured_[spec.class_id] = it->second.mean_response_seconds;
      }
    } else {
      double sampled =
          snapshot_.HarvestAvgResponse(measured_[spec.class_id]);
      raw[spec.class_id] = sampled;
      measured_[spec.class_id] =
          alpha * sampled + (1.0 - alpha) * measured_[spec.class_id];
    }
    oltp_response = measured_[spec.class_id];
  }

  // Feed the regression with the interval-to-interval deltas.
  if (!config_.control_oltp_directly && oltp_response >= 0.0 &&
      prev_oltp_response_ >= 0.0 && prev_olap_total_ >= 0.0) {
    oltp_model_.Update(prev_oltp_response_, oltp_response,
                       prev_olap_total_, olap_total_now);
  }
  prev_oltp_response_ = oltp_response;
  prev_olap_total_ = olap_total_now;

  // Solve for the next plan.
  SolverInput input;
  input.total_cost_limit = config_.system_cost_limit;
  input.oltp_model = &oltp_model_;
  for (const ServiceClassSpec& spec : classes_->classes()) {
    SolverInput::ClassState state;
    state.spec = &spec;
    state.measured = measured_[spec.class_id];
    state.current_limit = current.LimitFor(spec.class_id);
    state.directly_controlled =
        spec.type == workload::WorkloadType::kOltp &&
        config_.control_oltp_directly;
    if (config_.proactive_planning) {
      // Bias inputs by the predicted arrival-rate change: a class about
      // to get busier is planned for as if already slower.
      auto signal_it = signals.find(spec.class_id);
      if (signal_it != signals.end() && signal_it->second.level > 1e-9) {
        const WorkloadSignal& signal = signal_it->second;
        double gain = std::max(0.0, config_.proactive_gain);
        double ratio =
            std::clamp(signal.predicted_rate / signal.level,
                       1.0 / (1.0 + gain), 1.0 + gain);
        if (spec.goal_kind == GoalKind::kAvgResponseCeiling) {
          state.measured *= ratio;  // busier -> expect slower responses
        } else {
          state.measured /= ratio;  // busier -> expect lower velocity
        }
      }
    }
    input.classes.push_back(state);
  }
  auto solve_start = std::chrono::steady_clock::now();
  SchedulingPlan target =
      config_.allocator == QuerySchedulerConfig::Allocator::kGreedyAuction
          ? greedy_.Solve(input)
          : solver_.Solve(input);
  double solver_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solve_start)
          .count();

  // Rate-limit: move only part of the way toward the optimum, then
  // renormalize so the limits still sum to the system cost limit.
  double step = std::clamp(config_.plan_step_fraction, 0.05, 1.0);
  SchedulingPlan next;
  next.predicted_utility = target.predicted_utility;
  double sum = 0.0;
  for (const auto& [class_id, limit] : target.cost_limits) {
    double blended =
        current.LimitFor(class_id) +
        step * (limit - current.LimitFor(class_id));
    next.cost_limits[class_id] = blended;
    sum += blended;
  }
  if (sum > 0.0) {
    for (auto& [class_id, limit] : next.cost_limits) {
      limit *= config_.system_cost_limit / sum;
    }
  }
  for (const auto& [class_id, limit] : next.cost_limits) {
    limit_history_[class_id].Append(simulator_->Now(), limit);
  }
  if (telemetry_ != nullptr) {
    // Audit before SetPlan so queue depths reflect what the planner saw,
    // not the releases the new plan triggers.
    RecordPlanAudit(stats, signals, raw, oltp_response, input, target,
                    next, solver_wall_seconds);
  }
  dispatcher_.SetPlan(next);
}

void QueryScheduler::RecordPlanAudit(
    const std::map<int, ClassIntervalStats>& stats,
    const std::map<int, WorkloadSignal>& signals,
    const std::map<int, double>& raw, double oltp_response,
    const SolverInput& input, const SchedulingPlan& target,
    const SchedulingPlan& next, double solver_wall_seconds) {
  planning_cycles_counter_->Inc();
  planner_utility_gauge_->Set(target.predicted_utility);

  obs::PlannerAuditRecord record;
  record.interval = planning_cycles_;
  record.sim_time = simulator_->Now();
  record.system_cost_limit = config_.system_cost_limit;
  record.oltp_response = oltp_response;
  record.solver_utility = target.predicted_utility;
  record.allocator =
      config_.allocator == QuerySchedulerConfig::Allocator::kGreedyAuction
          ? "greedy-auction"
          : "utility-search";
  obs::IntervalRow row;
  row.interval = planning_cycles_;
  row.sim_time = record.sim_time;
  row.solver_wall_seconds = solver_wall_seconds;
  row.solver_utility = target.predicted_utility;
  for (const ServiceClassSpec& spec : classes_->classes()) {
    obs::PlannerAuditClass cls;
    cls.class_id = spec.class_id;
    cls.is_oltp = spec.type == workload::WorkloadType::kOltp;
    cls.goal = spec.goal_value;
    auto raw_it = raw.find(spec.class_id);
    if (raw_it != raw.end()) cls.measured_raw = raw_it->second;
    cls.measured_smoothed = measured_.at(spec.class_id);
    cls.goal_ratio = spec.GoalRatio(cls.measured_smoothed);
    auto stats_it = stats.find(spec.class_id);
    if (stats_it != stats.end()) {
      cls.completed_in_interval = stats_it->second.completed;
    }
    cls.queue_depth = dispatcher_.QueuedFor(spec.class_id);
    cls.running = interceptor_.running_count(spec.class_id);
    cls.running_cost = interceptor_.running_cost(spec.class_id);
    auto signal_it = signals.find(spec.class_id);
    if (signal_it != signals.end()) {
      cls.arrival_rate = signal_it->second.arrival_rate;
      cls.predicted_rate = signal_it->second.predicted_rate;
      cls.change_detected = signal_it->second.change_detected;
    }
    cls.target_limit = target.LimitFor(spec.class_id);
    cls.enforced_limit = next.LimitFor(spec.class_id);
    record.classes.push_back(cls);

    // Resolve last interval's prediction against the same smoothed
    // measurement the audit record carries (bit-identical doubles), then
    // fold this interval into the attainment windows.
    telemetry_->ledger.Observe(planning_cycles_, spec.class_id,
                               cls.measured_smoothed);
    telemetry_->slo.Observe(spec.class_id, planning_cycles_,
                            record.sim_time, cls.goal_ratio);

    obs::IntervalClassSample sample;
    sample.class_id = spec.class_id;
    sample.is_oltp = cls.is_oltp;
    sample.cost_limit = cls.enforced_limit;
    sample.measured = cls.measured_smoothed;
    sample.goal_ratio = cls.goal_ratio;
    sample.queue_depth = cls.queue_depth;
    sample.admitted_cost = cls.running_cost;
    sample.completed_in_interval = cls.completed_in_interval;
    if (stats_it != stats.end()) {
      sample.stage_gateway_queue_seconds =
          stats_it->second.mean_stage_gateway_queue_seconds;
      sample.stage_dispatch_seconds =
          stats_it->second.mean_stage_dispatch_seconds;
      sample.stage_execute_seconds =
          stats_it->second.mean_stage_execute_seconds;
    }
    row.classes.push_back(sample);

    auto handle_it = class_telemetry_.find(spec.class_id);
    if (handle_it != class_telemetry_.end()) {
      ClassTelemetry& handles = handle_it->second;
      handles.slo_measured->Set(cls.measured_smoothed);
      handles.slo_goal_ratio->Set(cls.goal_ratio);
      handles.cost_limit->Set(cls.enforced_limit);
      handles.slo_attainment->Set(
          telemetry_->slo.RollingAttainment(spec.class_id));
    }
  }
  telemetry_->audit.Add(std::move(record));
  telemetry_->recorder.Append(std::move(row));

  // What the planner expects each class to deliver next interval under
  // the plan it just enforced — resolved when interval k+1 lands above.
  std::map<int, double> predicted = PredictPerformance(input, next);
  double slope = oltp_model_.slope();
  for (const ServiceClassSpec& spec : classes_->classes()) {
    auto it = predicted.find(spec.class_id);
    if (it == predicted.end()) continue;
    telemetry_->ledger.Predict(planning_cycles_, spec.class_id,
                               spec.type == workload::WorkloadType::kOltp,
                               it->second, slope);
  }
}

}  // namespace qsched::sched
