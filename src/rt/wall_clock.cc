#include "rt/wall_clock.h"

#include "common/logging.h"

namespace qsched::rt {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

WallClock::WallClock() : WallClock(Options{}) {}

WallClock::WallClock(const Options& options)
    : options_(options), start_(SteadyClock::now()) {
  QSCHED_CHECK(options_.time_scale > 0.0)
      << "time_scale must be positive, got " << options_.time_scale;
}

WallClock::~WallClock() { Stop(); }

void WallClock::Start() {
  std::lock_guard<std::recursive_mutex> lock(core_mu_);
  QSCHED_CHECK(!thread_.joinable()) << "WallClock already started";
  stop_ = false;
  thread_ = std::thread([this] { ClockLoop(); });
}

void WallClock::Stop() {
  {
    std::lock_guard<std::recursive_mutex> lock(core_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

sim::SimTime WallClock::Now() const {
  double wall =
      std::chrono::duration<double>(SteadyClock::now() - start_).count();
  return wall * options_.time_scale;
}

WallClock::WallTime WallClock::WallDeadline(double model_time) const {
  return start_ + std::chrono::duration_cast<SteadyClock::duration>(
                      std::chrono::duration<double>(model_time /
                                                    options_.time_scale));
}

sim::EventId WallClock::ScheduleAt(sim::SimTime when, sim::EventFn fn) {
  std::lock_guard<std::recursive_mutex> lock(core_mu_);
  double now = Now();
  if (when < now) when = now;
  sim::EventId id = next_id_++;
  Key key{when, next_seq_++};
  Entry entry;
  entry.id = id;
  entry.fn = std::move(fn);
  timers_.emplace(key, std::move(entry));
  index_.emplace(id, key);
  cv_.notify_all();
  return id;
}

sim::EventId WallClock::ScheduleAfter(sim::SimTime delay, sim::EventFn fn) {
  if (delay < 0.0) delay = 0.0;
  std::lock_guard<std::recursive_mutex> lock(core_mu_);
  return ScheduleAt(Now() + delay, std::move(fn));
}

bool WallClock::Cancel(sim::EventId id) {
  std::lock_guard<std::recursive_mutex> lock(core_mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  timers_.erase(it->second);
  index_.erase(it);
  return true;
}

size_t WallClock::timers_pending() const {
  std::lock_guard<std::recursive_mutex> lock(core_mu_);
  return timers_.size();
}

void WallClock::ClockLoop() {
  std::unique_lock<std::recursive_mutex> lock(core_mu_);
  while (!stop_) {
    if (timers_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !timers_.empty(); });
      continue;
    }
    auto it = timers_.begin();
    WallTime deadline = WallDeadline(it->first.when);
    if (SteadyClock::now() < deadline) {
      // New earlier timers or Stop() re-run the loop via the notify.
      cv_.wait_until(lock, deadline);
      continue;
    }
    // Pop-and-execute is atomic under the core lock: once the entry
    // leaves the heap no Cancel can reach it, and the callback runs
    // before any other thread's Run() section interleaves.
    Entry entry = std::move(it->second);
    timers_.erase(it);
    index_.erase(entry.id);
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    entry.fn();
  }
}

}  // namespace qsched::rt
