#ifndef QSCHED_RT_GATEWAY_H_
#define QSCHED_RT_GATEWAY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/parallel.h"
#include "obs/telemetry.h"
#include "rt/mpmc_queue.h"
#include "rt/wall_clock.h"
#include "workload/client.h"
#include "workload/query.h"

namespace qsched::rt {

struct GatewayOptions {
  /// Bound of the submission queue (0 clamps to 1, see MpmcQueue).
  size_t queue_capacity = 1024;
  /// Gateway worker threads draining the queue into the scheduler.
  int workers = 2;
  /// Maximum queries a worker admits under one core-lock acquisition
  /// (WallClock::RunBatch). 0 means auto (kDefaultAdmitBatch). A batch
  /// is opportunistic: a worker never waits to fill one — it takes
  /// whatever is queued, up to this bound, so an idle system still
  /// admits each query immediately.
  size_t admit_batch_size = 0;
};

/// The resolved auto value for GatewayOptions::admit_batch_size.
inline constexpr size_t kDefaultAdmitBatch = 32;

/// Why a submission was turned away. kQueueFull is open-loop shedding
/// (transient backpressure — retrying makes sense); kShuttingDown means
/// intake is closed for good; kBackendUnavailable is the cluster
/// router's verdict when no healthy backend could take the query. The
/// network layer forwards this verbatim as the wire REJECTED{reason}.
enum class RejectReason : uint8_t {
  kQueueFull = 1,
  kShuttingDown = 2,
  kBackendUnavailable = 3,
};

const char* RejectReasonToString(RejectReason reason);

/// Coarse gateway lifecycle for health endpoints: accepting (intake
/// open), draining (intake closed, accepted queries still in flight),
/// stopped (intake closed and every accepted query completed).
enum class GatewayHealth : uint8_t {
  kAccepting = 0,
  kDraining = 1,
  kStopped = 2,
};

const char* GatewayHealthToString(GatewayHealth health);

/// The runtime's front door: producers (load generators, client threads)
/// hand queries to Offer()/Submit(); a pool of gateway workers drains the
/// bounded MPMC queue, stamps each query with a fresh id, and submits it
/// to the QueryFrontend (normally the QueryScheduler, which classifies
/// and admits it) under the WallClock's core lock.
///
/// Thread-safety: Offer/Submit are safe from any thread. Completion
/// callbacks arrive on the clock thread (engine completions are timers);
/// all counters are atomics, so stats getters are safe from any thread.
///
/// Accounting identity (checked by the smoke test): after Drain() +
/// WaitIdle(), accepted == admitted == completed, and every producer-side
/// submission is either accepted or rejected — no query is lost or
/// duplicated.
class Gateway {
 public:
  using CompleteFn = workload::QueryFrontend::CompleteFn;

  /// `clock`, `frontend` and `telemetry` (optional) must outlive the
  /// gateway. The frontend is only ever called under clock->Run().
  Gateway(WallClock* clock, workload::QueryFrontend* frontend,
          const GatewayOptions& options,
          obs::Telemetry* telemetry = nullptr);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Spawns the worker pool.
  void Start();

  /// Open-loop submission: enqueues or, when the queue is full or closed,
  /// sheds (returns false; the query is counted rejected). The query's id
  /// is assigned by the gateway — the caller's id field is ignored.
  ///
  /// `on_complete` (optional) is invoked exactly once for this query,
  /// on the completion thread, after the gateway's accounting and before
  /// the global set_on_complete observer — the hook the network server
  /// uses to route a COMPLETED frame back to the originating connection.
  /// On rejection it is never invoked; `reason` (optional) then says why.
  bool Offer(workload::Query query, CompleteFn on_complete = nullptr,
             RejectReason* reason = nullptr);

  /// Closed-loop submission: blocks while the queue is full (producer
  /// backpressure); false only once the gateway is draining (`reason`,
  /// when set, is then always kShuttingDown). `on_complete` as in Offer.
  bool Submit(workload::Query query, CompleteFn on_complete = nullptr,
              RejectReason* reason = nullptr);

  /// Closes intake and joins the workers: every accepted query has been
  /// handed to the frontend when this returns. Idempotent.
  void Drain();

  /// Blocks until every admitted query has completed (requires the clock
  /// thread to be running) or the wall timeout expires. Returns true when
  /// fully idle. Call after Drain().
  bool WaitIdle(double timeout_wall_seconds);

  /// Observer invoked (on the completion thread) for every finished
  /// query, after the gateway's own accounting. Set before Start().
  void set_on_complete(CompleteFn fn) { on_complete_ = std::move(fn); }

  /// Observer invoked synchronously on the producer thread for every
  /// offered query — accepted or rejected — right after its id is
  /// assigned, before any queueing decision. This is the capture point
  /// for the trace recorder: the observer sees exactly the offered
  /// stream, so captured + dropped == offered holds downstream. Must be
  /// cheap and non-blocking. Set before Start().
  void set_on_offer(std::function<void(const workload::Query&)> fn) {
    on_offer_ = std::move(fn);
  }

  // Accounting (safe from any thread).
  uint64_t accepted() const { return accepted_.load(); }
  uint64_t rejected() const {
    return rejected_queue_full_.load() + rejected_shutting_down_.load();
  }
  uint64_t rejected_queue_full() const {
    return rejected_queue_full_.load();
  }
  uint64_t rejected_shutting_down() const {
    return rejected_shutting_down_.load();
  }
  uint64_t admitted() const { return admitted_.load(); }
  uint64_t completed() const { return completed_.load(); }
  size_t queue_depth() const { return queue_.size(); }

  /// Lifecycle snapshot for /healthz (safe from any thread). Reads
  /// completed before accepted so a racing completion can only make the
  /// gateway look draining a moment longer, never stopped too early.
  GatewayHealth health() const {
    uint64_t completed_now = completed_.load();
    if (!queue_.closed()) return GatewayHealth::kAccepting;
    return completed_now < accepted_.load() ? GatewayHealth::kDraining
                                            : GatewayHealth::kStopped;
  }

 private:
  struct Item {
    workload::Query query;
    std::chrono::steady_clock::time_point enqueued;
    CompleteFn on_complete;
  };

  bool RecordPushOutcome(QueuePush outcome, RejectReason* reason);
  void WorkerLoop();
  /// Admits one popped batch: stamps traces, records admission latency
  /// and batch occupancy, then submits every query to the frontend under
  /// a single WallClock::RunBatch core-lock acquisition, in queue order.
  void AdmitBatch(std::vector<Item>* batch);
  void OnQueryComplete(const workload::QueryRecord& record,
                       const CompleteFn& per_query);
  obs::Counter* ClassCompletedCounter(int class_id);
  /// Per-class {gateway_queue, dispatch, execute} stage histograms,
  /// created lazily and cached so the completion path never takes the
  /// registry lock twice for the same class.
  const std::array<obs::Histogram*, 3>& StageHistograms(int class_id);

  WallClock* clock_;
  workload::QueryFrontend* frontend_;
  GatewayOptions options_;
  const size_t admit_batch_size_;  // resolved (never 0)
  MpmcQueue<Item> queue_;
  std::unique_ptr<harness::ThreadPool> pool_;
  CompleteFn on_complete_;
  std::function<void(const workload::Query&)> on_offer_;

  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutting_down_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  obs::Telemetry* telemetry_;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* admission_latency_hist_ = nullptr;
  obs::Histogram* batch_occupancy_hist_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* rejected_queue_full_counter_ = nullptr;
  obs::Counter* rejected_shutting_down_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  std::mutex class_counter_mu_;
  std::map<int, obs::Counter*> class_completed_counters_;
  std::map<int, std::array<obs::Histogram*, 3>> stage_hists_;
};

}  // namespace qsched::rt

#endif  // QSCHED_RT_GATEWAY_H_
