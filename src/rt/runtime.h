#ifndef QSCHED_RT_RUNTIME_H_
#define QSCHED_RT_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "engine/execution_engine.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/wall_clock.h"
#include "scheduler/query_scheduler.h"
#include "scheduler/service_class.h"

namespace qsched::rt {

struct RuntimeOptions {
  /// Model seconds per wall second. 60 means one wall second covers one
  /// paper-scale control minute, so a 2 s live run spans two planning
  /// cycles.
  double time_scale = 1.0;
  /// Model-time horizon the snapshot sampler is armed for; size it to
  /// comfortably cover the intended run length (it only bounds how far
  /// ahead sampler timers exist, not the run itself).
  double horizon_model_seconds = 3600.0;
  uint64_t seed = 42;
  GatewayOptions gateway;
  engine::EngineConfig engine;
  sched::QuerySchedulerConfig scheduler;
  /// Optional; must outlive the runtime. Also handed to the scheduler
  /// (overriding scheduler.telemetry) so audit records, spans and SLO
  /// gauges flow for live runs exactly as for simulated ones.
  obs::Telemetry* telemetry = nullptr;
};

/// The real-time service runtime: the same ExecutionEngine +
/// QueryScheduler stack that the DES drives, run on the wall clock.
///
/// Threads and their roles:
///  * clock thread (inside WallClock) — fires model timers (engine I/O
///    and CPU completions, interception delays, snapshot samples) under
///    the core lock;
///  * gateway workers — drain the MPMC submission queue and submit into
///    the scheduler under the core lock;
///  * control-loop thread (owned here) — once per control interval (wall
///    time = interval / time_scale) takes the core lock and runs one
///    Scheduling Planner cycle, so new cost limits are applied atomically
///    with respect to submissions and completions;
///  * producers (load generators or arbitrary caller threads) — push
///    queries into the gateway from anywhere.
///
/// Lifecycle: construct -> Start() -> feed gateway() -> Shutdown().
/// Shutdown closes intake, drains the submission queue, waits for every
/// admitted query to complete, then stops the control loop and the
/// clock; the returned stats carry the conservation accounting.
class Runtime {
 public:
  Runtime(const sched::ServiceClassSet& classes,
          const RuntimeOptions& options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  void Start();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t planning_cycles = 0;
    uint64_t timers_fired = 0;
    /// Model seconds covered by the run at shutdown.
    double model_seconds = 0.0;
    /// False when the drain timeout expired with queries still in
    /// flight (admitted - completed of them).
    bool drained = false;
  };

  /// Stops intake, drains, stops all runtime threads. Idempotent (later
  /// calls return the same stats).
  Stats Shutdown(double drain_timeout_wall_seconds = 30.0);

  WallClock& clock() { return clock_; }
  Gateway& gateway() { return gateway_; }
  sched::QueryScheduler& scheduler() { return scheduler_; }
  engine::ExecutionEngine& engine() { return engine_; }
  const sched::ServiceClassSet& classes() const { return classes_; }

 private:
  void ControlLoop();

  RuntimeOptions options_;
  sched::ServiceClassSet classes_;
  WallClock clock_;
  engine::ExecutionEngine engine_;
  sched::QueryScheduler scheduler_;
  Gateway gateway_;

  std::thread control_thread_;
  std::mutex control_mu_;
  std::condition_variable control_cv_;
  bool stop_control_ = false;

  bool started_ = false;
  bool shut_down_ = false;
  Stats final_stats_;
};

}  // namespace qsched::rt

#endif  // QSCHED_RT_RUNTIME_H_
