#include "rt/runtime.h"

#include <chrono>

#include "common/logging.h"
#include "common/rng.h"

namespace qsched::rt {

namespace {
sched::QuerySchedulerConfig WithTelemetry(
    sched::QuerySchedulerConfig config, obs::Telemetry* telemetry) {
  if (telemetry != nullptr) config.telemetry = telemetry;
  return config;
}
}  // namespace

Runtime::Runtime(const sched::ServiceClassSet& classes,
                 const RuntimeOptions& options)
    : options_(options),
      classes_(classes),
      clock_(WallClock::Options{options.time_scale}),
      engine_(&clock_, options.engine, Rng(options.seed).Fork(0xe)),
      scheduler_(&clock_, &engine_, &classes_,
                 WithTelemetry(options.scheduler, options.telemetry)),
      gateway_(&clock_, &scheduler_, options.gateway, options.telemetry) {
  if (options_.telemetry != nullptr) {
    engine_.set_telemetry(options_.telemetry);
  }
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::Start() {
  QSCHED_CHECK(!started_) << "runtime already started";
  started_ = true;
  clock_.Start();
  // The sampler chain is model timers; arm it before load arrives.
  clock_.Run([&] { scheduler_.StartSampling(options_.horizon_model_seconds); });
  gateway_.Start();
  control_thread_ = std::thread([this] { ControlLoop(); });
}

void Runtime::ControlLoop() {
  double interval_model = options_.scheduler.control_interval_seconds;
  QSCHED_CHECK(interval_model > 0.0);
  auto interval_wall = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      interval_model / options_.time_scale));
  auto next = std::chrono::steady_clock::now() + interval_wall;
  std::unique_lock<std::mutex> lock(control_mu_);
  while (!stop_control_) {
    if (control_cv_.wait_until(lock, next,
                               [this] { return stop_control_; })) {
      break;
    }
    next += interval_wall;
    lock.unlock();
    // One planner cycle under the core lock: measurements are harvested
    // and the new cost limits installed (releasing what now fits)
    // atomically with respect to submissions and completions.
    clock_.Run([&] { scheduler_.RunPlanningCycle(); });
    lock.lock();
  }
}

Runtime::Stats Runtime::Shutdown(double drain_timeout_wall_seconds) {
  if (shut_down_) return final_stats_;
  shut_down_ = true;

  Stats stats;
  if (started_) {
    // 1. Close intake and hand every accepted query to the scheduler.
    gateway_.Drain();
    // 2. Wait for the in-flight population to complete. Progress needs
    //    the clock thread (engine completions are timers) and benefits
    //    from the control loop (rising limits release queued work), so
    //    both are still running; the dispatcher's min-one rule
    //    guarantees every class keeps draining regardless.
    stats.drained = gateway_.WaitIdle(drain_timeout_wall_seconds);
    // 3. Stop the control loop, then the clock.
    {
      std::lock_guard<std::mutex> lock(control_mu_);
      stop_control_ = true;
    }
    control_cv_.notify_all();
    if (control_thread_.joinable()) control_thread_.join();
    clock_.Run([&] { engine_.RefreshTelemetryGauges(); });
    stats.model_seconds = clock_.Now();
    clock_.Stop();
  }

  stats.accepted = gateway_.accepted();
  stats.rejected = gateway_.rejected();
  stats.admitted = gateway_.admitted();
  stats.completed = gateway_.completed();
  stats.planning_cycles = scheduler_.planning_cycles();
  stats.timers_fired = clock_.timers_fired();
  final_stats_ = stats;
  return stats;
}

}  // namespace qsched::rt
