#ifndef QSCHED_RT_LOADGEN_H_
#define QSCHED_RT_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "workload/query.h"

namespace qsched::rt {

/// How the offered arrival rate varies over the run.
enum class ArrivalPattern {
  kConstant,  // flat qps
  kBursty,    // square wave: qps * burst_factor during bursts, qps between
  kDiurnal,   // sinusoid: qps * (1 + amplitude * sin(2*pi*t / period))
};

const char* ArrivalPatternToString(ArrivalPattern pattern);
bool ArrivalPatternFromString(const std::string& name,
                              ArrivalPattern* out);

struct LoadGenOptions {
  ArrivalPattern pattern = ArrivalPattern::kConstant;
  /// Mean offered rate (queries per wall second).
  double qps = 100.0;
  /// Wall-clock length of the generation phase.
  double duration_wall_seconds = 2.0;
  uint64_t seed = 42;
  /// When true (open loop), full-queue submissions are shed via
  /// Gateway::Offer; when false the generator blocks on backpressure.
  bool shed_when_full = true;
  /// Bursty pattern: cycle length, on-fraction and rate multiplier.
  double burst_period_seconds = 0.5;
  double burst_duty = 0.3;
  double burst_factor = 4.0;
  /// Diurnal pattern: "day" length and swing (0..1).
  double diurnal_period_seconds = 2.0;
  double diurnal_amplitude = 0.8;
  /// Client ids are assigned round-robin over this many synthetic
  /// clients (the OLTP snapshot monitor samples per client).
  int num_clients = 16;
};

/// One weighted source in the mix: a query generator tagged with the
/// service class its draws are submitted under.
struct LoadSource {
  workload::QueryGenerator* generator = nullptr;
  int class_id = 0;
  double weight = 1.0;
};

/// Open-loop load generator: a dedicated thread draws Poisson arrivals
/// (exponential inter-arrival times at the pattern's current rate),
/// samples a source from the mix, and pushes the query into the gateway.
/// Deterministic in its draw sequence given the seed; arrival *timing* is
/// wall-clock and therefore not reproducible — that is the point of the
/// real-time mode.
///
/// Thread-safety: the generator thread owns its sources and RNG
/// exclusively; Start/Join must come from one controlling thread; the
/// counters are atomics, readable from anywhere.
class LoadGenerator {
 public:
  LoadGenerator(Gateway* gateway, std::vector<LoadSource> sources,
                const LoadGenOptions& options,
                obs::Telemetry* telemetry = nullptr);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Spawns the arrival thread.
  void Start();
  /// Blocks until the generation phase ends (duration elapsed).
  void Join();

  /// Queries pushed toward the gateway (accepted + shed).
  uint64_t offered() const { return offered_.load(); }
  /// Queries the gateway turned away (full queue, open loop only).
  uint64_t shed() const { return shed_.load(); }

  /// Rate multiplier of `pattern` at wall time `t` (pure; exposed for
  /// tests). Always >= 0.
  static double RateFactorAt(double t, const LoadGenOptions& options);

 private:
  void Run();

  Gateway* gateway_;
  std::vector<LoadSource> sources_;
  std::vector<double> weights_;
  LoadGenOptions options_;
  Rng rng_;
  std::thread thread_;
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> shed_{0};

  obs::Counter* offered_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
};

}  // namespace qsched::rt

#endif  // QSCHED_RT_LOADGEN_H_
