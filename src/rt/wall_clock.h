#ifndef QSCHED_RT_WALL_CLOCK_H_
#define QSCHED_RT_WALL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/clock.h"

namespace qsched::rt {

/// sim::Clock implemented on std::chrono::steady_clock: the same engine,
/// Query Patroller and scheduler components that run under the DES run
/// unmodified on the wall clock, because all they ever see is Now() /
/// ScheduleAt / Cancel.
///
/// Model time = elapsed wall seconds * time_scale. A time_scale above 1
/// compresses model time (e.g. 30 means one wall second covers 30 model
/// seconds), so a multi-interval control experiment fits a short live
/// run; 1 is real time.
///
/// Threading model — the "core lock" protocol. The DES components are
/// written single-threaded, so the WallClock serializes everything that
/// touches them behind one recursive mutex (the core lock):
///
///  * A dedicated clock thread pops each due timer and executes its
///    callback *while holding the core lock*. Pop-and-execute is one
///    critical section, which closes the classic timer race: nobody can
///    observe (or Cancel) an event "in between" being popped and run.
///  * Any other thread that needs to call into the components — gateway
///    workers submitting queries, the control-loop thread running a
///    planning cycle — does so inside Run(fn), which takes the same
///    lock. Callbacks may re-enter ScheduleAt/Cancel freely (the lock is
///    recursive), exactly like DES callbacks scheduling follow-on events.
///
/// Every Clock method is thread-safe. Semantics match the Simulator:
/// past times clamp to Now(), equal timestamps fire FIFO, Cancel returns
/// false once the callback fired.
class WallClock final : public sim::Clock {
 public:
  struct Options {
    /// Model seconds per wall second (> 0).
    double time_scale = 1.0;
  };

  WallClock();  // real time (time_scale 1)
  explicit WallClock(const Options& options);
  ~WallClock() override;

  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;

  /// Spawns the clock thread. Timers scheduled before Start() are held
  /// and fire once the thread runs.
  void Start();

  /// Joins the clock thread; pending timers are abandoned (their
  /// callbacks never run). Idempotent.
  void Stop();

  // sim::Clock interface (thread-safe).
  sim::SimTime Now() const override;
  sim::EventId ScheduleAt(sim::SimTime when, sim::EventFn fn) override;
  sim::EventId ScheduleAfter(sim::SimTime delay, sim::EventFn fn) override;
  bool Cancel(sim::EventId id) override;

  /// Runs `fn` while holding the core lock, serialized against timer
  /// callbacks and every other Run(). This is the only sanctioned way
  /// for non-clock threads to call into the single-threaded model
  /// components.
  template <typename F>
  auto Run(F&& fn) {
    std::lock_guard<std::recursive_mutex> lock(core_mu_);
    return fn();
  }

  /// Amortized core-lock entry: acquires the core lock ONCE and invokes
  /// `fn(i)` for every i in [0, count) while holding it. This is the
  /// batched-admission seam — a gateway worker that drained N queries
  /// from its queue submits all N under a single lock acquisition
  /// instead of paying the acquire/release (and the cache-line
  /// ping-pong with the clock thread) N times. Semantically equivalent
  /// to calling Run() N times back-to-back with no interleaving: the
  /// calls run in index order, callbacks may re-enter ScheduleAt/Cancel,
  /// and timer callbacks cannot fire in between.
  template <typename F>
  void RunBatch(size_t count, F&& fn) {
    if (count == 0) return;
    std::lock_guard<std::recursive_mutex> lock(core_mu_);
    for (size_t i = 0; i < count; ++i) fn(i);
  }

  uint64_t timers_fired() const {
    return timers_fired_.load(std::memory_order_relaxed);
  }
  size_t timers_pending() const;
  double time_scale() const { return options_.time_scale; }

 private:
  using WallTime = std::chrono::steady_clock::time_point;

  /// Heap key: model time with a monotonic sequence tie-break (FIFO for
  /// equal timestamps, like the Simulator).
  struct Key {
    double when;
    uint64_t seq;
    bool operator<(const Key& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };
  struct Entry {
    sim::EventId id = 0;
    sim::EventFn fn;
  };

  void ClockLoop();
  WallTime WallDeadline(double model_time) const;

  const Options options_;
  const WallTime start_;

  /// The core lock (see class comment). Guards timers_, index_, the id /
  /// seq counters and stop_, and serializes all component access.
  mutable std::recursive_mutex core_mu_;
  std::condition_variable_any cv_;
  std::map<Key, Entry> timers_;
  std::unordered_map<sim::EventId, Key> index_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  bool stop_ = false;
  std::atomic<uint64_t> timers_fired_{0};
  std::thread thread_;
};

}  // namespace qsched::rt

#endif  // QSCHED_RT_WALL_CLOCK_H_
