#include "rt/loadgen.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace qsched::rt {

const char* ArrivalPatternToString(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kConstant:
      return "constant";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

bool ArrivalPatternFromString(const std::string& name,
                              ArrivalPattern* out) {
  if (name == "constant") {
    *out = ArrivalPattern::kConstant;
  } else if (name == "bursty") {
    *out = ArrivalPattern::kBursty;
  } else if (name == "diurnal") {
    *out = ArrivalPattern::kDiurnal;
  } else {
    return false;
  }
  return true;
}

LoadGenerator::LoadGenerator(Gateway* gateway,
                             std::vector<LoadSource> sources,
                             const LoadGenOptions& options,
                             obs::Telemetry* telemetry)
    : gateway_(gateway),
      sources_(std::move(sources)),
      options_(options),
      rng_(options.seed, /*stream=*/0x10adc0deULL) {
  QSCHED_CHECK(!sources_.empty()) << "load generator needs sources";
  QSCHED_CHECK(options_.qps > 0.0) << "qps must be positive";
  weights_.reserve(sources_.size());
  for (const LoadSource& source : sources_) {
    QSCHED_CHECK(source.generator != nullptr);
    weights_.push_back(source.weight);
  }
  if (telemetry != nullptr) {
    offered_counter_ =
        telemetry->registry.GetCounter("qsched_rt_loadgen_offered_total");
    shed_counter_ =
        telemetry->registry.GetCounter("qsched_rt_loadgen_shed_total");
  }
}

LoadGenerator::~LoadGenerator() { Join(); }

double LoadGenerator::RateFactorAt(double t,
                                   const LoadGenOptions& options) {
  switch (options.pattern) {
    case ArrivalPattern::kConstant:
      return 1.0;
    case ArrivalPattern::kBursty: {
      double period = options.burst_period_seconds;
      if (period <= 0.0) return 1.0;
      double phase = std::fmod(t, period) / period;
      return phase < options.burst_duty ? options.burst_factor : 1.0;
    }
    case ArrivalPattern::kDiurnal: {
      double period = options.diurnal_period_seconds;
      if (period <= 0.0) return 1.0;
      double factor = 1.0 + options.diurnal_amplitude *
                                std::sin(2.0 * M_PI * t / period);
      return factor < 0.0 ? 0.0 : factor;
    }
  }
  return 1.0;
}

void LoadGenerator::Start() {
  QSCHED_CHECK(!thread_.joinable()) << "load generator already started";
  thread_ = std::thread([this] { Run(); });
}

void LoadGenerator::Join() {
  if (thread_.joinable()) thread_.join();
}

void LoadGenerator::Run() {
  using SteadyClock = std::chrono::steady_clock;
  const SteadyClock::time_point start = SteadyClock::now();
  double t = 0.0;
  uint64_t seq = 0;
  while (t < options_.duration_wall_seconds) {
    double rate = options_.qps * RateFactorAt(t, options_);
    // A zero-rate trough (diurnal) idles forward at a fixed step.
    double dt = rate > 0.0 ? rng_.Exponential(1.0 / rate) : 0.010;
    t += dt;
    if (t >= options_.duration_wall_seconds) break;
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(t)));

    size_t pick = rng_.Categorical(weights_);
    const LoadSource& source = sources_[pick];
    workload::Query query = source.generator->Next();
    query.class_id = source.class_id;
    query.client_id = static_cast<int>(seq++ % static_cast<uint64_t>(
                          options_.num_clients < 1 ? 1
                                                   : options_.num_clients));
    offered_.fetch_add(1, std::memory_order_relaxed);
    if (offered_counter_ != nullptr) offered_counter_->Inc();
    bool ok = options_.shed_when_full ? gateway_->Offer(std::move(query))
                                      : gateway_->Submit(std::move(query));
    if (!ok) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_ != nullptr) shed_counter_->Inc();
    }
  }
}

}  // namespace qsched::rt
