#ifndef QSCHED_RT_MPMC_QUEUE_H_
#define QSCHED_RT_MPMC_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace qsched::rt {

/// Why a push did not enqueue (or kOk). Distinguishing kFull from
/// kClosed is what lets the gateway report *why* a query was rejected
/// (queue-full shedding vs shutting-down), which the network layer
/// forwards to remote clients as REJECTED{reason}.
enum class QueuePush { kOk, kFull, kClosed };

/// Bounded multi-producer multi-consumer queue: the hand-off between the
/// real-time runtime's submission side (load generators, client threads)
/// and the gateway workers that feed the scheduler.
///
/// Thread-safety: every method is safe to call from any thread. One mutex
/// guards the deque; two condition variables separate the producer wait
/// (queue full) from the consumer wait (queue empty), so a Push never
/// wakes other producers and vice versa.
///
/// Capacity semantics: a capacity of 0 is clamped to 1 — a zero-slot
/// bounded queue cannot make progress (Push would block forever with no
/// item for Pop to take), so the smallest meaningful bound is used
/// instead. This is deliberate and tested, not an accident.
///
/// Shutdown semantics: Close() wakes everyone; after it, producers fail
/// immediately (Push/TryPush return false, the item is dropped by the
/// caller) while consumers keep draining — Pop returns the remaining
/// items in order and only then starts returning false. This is what
/// lets the runtime stop intake and still account for every query that
/// was accepted.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full (producer backpressure). Returns
  /// false — without enqueueing — once the queue is closed.
  bool Push(T value) { return PushOutcome(std::move(value)) == QueuePush::kOk; }

  /// Push with a reason: blocking producers only ever fail because the
  /// queue closed, so the outcome is kOk or kClosed (never kFull).
  QueuePush PushOutcome(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return QueuePush::kClosed;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return QueuePush::kOk;
  }

  /// Non-blocking variant for open-loop producers: returns false when the
  /// queue is full (the caller sheds the item) or closed.
  bool TryPush(T value) {
    return TryPushOutcome(std::move(value)) == QueuePush::kOk;
  }

  /// TryPush with a reason: kFull (the caller sheds the item) or kClosed.
  QueuePush TryPushOutcome(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return QueuePush::kClosed;
      if (items_.size() >= capacity_) return QueuePush::kFull;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return QueuePush::kOk;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained. Returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Batch Pop: blocks like Pop() until at least one item is available,
  /// then moves up to `max_items` items (in queue order) into `*out`,
  /// which is cleared first. Returns the number taken; 0 only once the
  /// queue is closed and drained. Taking several slots in one critical
  /// section is what lets a consumer amortize a per-wakeup cost (the
  /// gateway's core-lock entry) across the whole batch; freeing several
  /// slots at once wakes every blocked producer, not just one.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    if (max_items == 0) max_items = 1;
    size_t taken = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      taken = std::min(max_items, items_.size());
      for (size_t i = 0; i < taken; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (taken > 1) {
      not_full_.notify_all();
    } else if (taken == 1) {
      not_full_.notify_one();
    }
    return taken;
  }

  /// Non-blocking Pop: false when currently empty (closed or not).
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: wakes all blocked producers (they fail) and
  /// consumers (they drain, then fail). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace qsched::rt

#endif  // QSCHED_RT_MPMC_QUEUE_H_
