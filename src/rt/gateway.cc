#include "rt/gateway.h"

#include <utility>

#include "common/strings.h"

namespace qsched::rt {

const char* RejectReasonToString(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kShuttingDown:
      return "shutting_down";
    case RejectReason::kBackendUnavailable:
      return "backend_unavailable";
  }
  return "unknown";
}

const char* GatewayHealthToString(GatewayHealth health) {
  switch (health) {
    case GatewayHealth::kAccepting:
      return "accepting";
    case GatewayHealth::kDraining:
      return "draining";
    case GatewayHealth::kStopped:
      return "stopped";
  }
  return "unknown";
}

Gateway::Gateway(WallClock* clock, workload::QueryFrontend* frontend,
                 const GatewayOptions& options, obs::Telemetry* telemetry)
    : clock_(clock),
      frontend_(frontend),
      options_(options),
      admit_batch_size_(options.admit_batch_size == 0
                            ? kDefaultAdmitBatch
                            : options.admit_batch_size),
      queue_(options.queue_capacity),
      telemetry_(telemetry) {
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    depth_gauge_ = reg.GetGauge("qsched_rt_gateway_queue_depth");
    reg.GetGauge("qsched_rt_admit_batch_size")
        ->Set(static_cast<double>(admit_batch_size_));
    batch_occupancy_hist_ = reg.GetHistogram("qsched_rt_batch_occupancy");
    admission_latency_hist_ =
        reg.GetHistogram("qsched_rt_admission_latency_seconds");
    accepted_counter_ = reg.GetCounter("qsched_rt_accepted_total");
    rejected_counter_ = reg.GetCounter("qsched_rt_rejected_total");
    rejected_queue_full_counter_ =
        reg.GetCounter("qsched_rt_rejected_by_reason_total",
                       "reason=\"queue_full\"");
    rejected_shutting_down_counter_ =
        reg.GetCounter("qsched_rt_rejected_by_reason_total",
                       "reason=\"shutting_down\"");
    completed_counter_ = reg.GetCounter("qsched_rt_completed_total");
  }
}

Gateway::~Gateway() { Drain(); }

void Gateway::Start() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<harness::ThreadPool>(
      options_.workers < 1 ? 1 : options_.workers);
  // Long-running consume loops, one per worker; they return when the
  // queue is closed and drained.
  for (int i = 0; i < pool_->num_threads(); ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

bool Gateway::RecordPushOutcome(QueuePush outcome, RejectReason* reason) {
  switch (outcome) {
    case QueuePush::kOk:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr) {
        accepted_counter_->Inc();
        depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
      return true;
    case QueuePush::kFull:
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (reason != nullptr) *reason = RejectReason::kQueueFull;
      if (telemetry_ != nullptr) {
        rejected_counter_->Inc();
        rejected_queue_full_counter_->Inc();
      }
      return false;
    case QueuePush::kClosed:
      rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      if (reason != nullptr) *reason = RejectReason::kShuttingDown;
      if (telemetry_ != nullptr) {
        rejected_counter_->Inc();
        rejected_shutting_down_counter_->Inc();
      }
      return false;
  }
  return false;
}

bool Gateway::Offer(workload::Query query, CompleteFn on_complete,
                    RejectReason* reason) {
  query.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (on_offer_) on_offer_(query);
  auto now = std::chrono::steady_clock::now();
  query.job.trace = std::make_shared<obs::QueryStageTrace>();
  query.job.trace->trace_id = query.id;
  query.job.trace->enqueued = now;
  Item item{std::move(query), now, std::move(on_complete)};
  return RecordPushOutcome(queue_.TryPushOutcome(std::move(item)), reason);
}

bool Gateway::Submit(workload::Query query, CompleteFn on_complete,
                     RejectReason* reason) {
  query.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (on_offer_) on_offer_(query);
  auto now = std::chrono::steady_clock::now();
  query.job.trace = std::make_shared<obs::QueryStageTrace>();
  query.job.trace->trace_id = query.id;
  query.job.trace->enqueued = now;
  Item item{std::move(query), now, std::move(on_complete)};
  return RecordPushOutcome(queue_.PushOutcome(std::move(item)), reason);
}

void Gateway::WorkerLoop() {
  std::vector<Item> batch;
  batch.reserve(admit_batch_size_);
  while (queue_.PopBatch(&batch, admit_batch_size_) > 0) {
    AdmitBatch(&batch);
  }
}

void Gateway::AdmitBatch(std::vector<Item>* batch) {
  // One timestamp per batch: every query in it was admitted by the same
  // worker wakeup, so a shared stamp keeps the StageTrace telescoping
  // exact while avoiding a clock read per query.
  auto popped = std::chrono::steady_clock::now();
  for (Item& item : *batch) {
    if (item.query.job.trace != nullptr) {
      item.query.job.trace->admitted = popped;
    }
    if (telemetry_ != nullptr) {
      admission_latency_hist_->Record(
          std::chrono::duration<double>(popped - item.enqueued).count());
    }
  }
  if (telemetry_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
    batch_occupancy_hist_->Record(static_cast<double>(batch->size()));
  }
  // The scheduler and everything behind it are single-threaded model
  // components: enter them only under the core lock — once for the
  // whole batch, in queue order. Each admission is counted before its
  // Submit: a query can complete synchronously (cancellation) or on the
  // clock thread before Submit even returns, and completed must never
  // outrun admitted or WaitIdle could report idle with work still
  // queued.
  clock_->RunBatch(batch->size(), [&](size_t i) {
    Item& item = (*batch)[i];
    admitted_.fetch_add(1, std::memory_order_release);
    frontend_->Submit(
        item.query,
        [this, per_query = std::move(item.on_complete)](
            const workload::QueryRecord& record) {
          OnQueryComplete(record, per_query);
        });
  });
}

void Gateway::OnQueryComplete(const workload::QueryRecord& record,
                              const CompleteFn& per_query) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (record.trace != nullptr) {
    obs::QueryStageTrace& trace = *record.trace;
    trace.completed = obs::QueryStageTrace::Clock::now();
    // A cancelled query never reached the engine: give it a zero-width
    // execute stage so the stages still telescope to the total.
    if (!trace.HasExecStart()) trace.exec_start = trace.completed;
    if (telemetry_ != nullptr) {
      const std::array<obs::Histogram*, 3>& hists =
          StageHistograms(record.class_id);
      hists[0]->Record(trace.GatewayQueueSeconds());
      hists[1]->Record(trace.DispatchSeconds());
      hists[2]->Record(trace.ExecuteSeconds());
    }
  }
  if (telemetry_ != nullptr) {
    completed_counter_->Inc();
    ClassCompletedCounter(record.class_id)->Inc();
  }
  if (per_query) per_query(record);
  if (on_complete_) on_complete_(record);
  // Take the idle mutex before notifying so the store to completed_
  // cannot slip between a waiter's predicate check and its sleep.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
}

obs::Counter* Gateway::ClassCompletedCounter(int class_id) {
  std::lock_guard<std::mutex> lock(class_counter_mu_);
  auto it = class_completed_counters_.find(class_id);
  if (it != class_completed_counters_.end()) return it->second;
  obs::Counter* counter = telemetry_->registry.GetCounter(
      "qsched_rt_class_completed_total",
      StrPrintf("class=\"%d\"", class_id));
  class_completed_counters_.emplace(class_id, counter);
  return counter;
}

const std::array<obs::Histogram*, 3>& Gateway::StageHistograms(
    int class_id) {
  std::lock_guard<std::mutex> lock(class_counter_mu_);
  auto it = stage_hists_.find(class_id);
  if (it != stage_hists_.end()) return it->second;
  obs::Registry& reg = telemetry_->registry;
  std::array<obs::Histogram*, 3> hists = {
      reg.GetHistogram(
          "qsched_stage_seconds",
          StrPrintf("class=\"%d\",stage=\"gateway_queue\"", class_id)),
      reg.GetHistogram(
          "qsched_stage_seconds",
          StrPrintf("class=\"%d\",stage=\"dispatch\"", class_id)),
      reg.GetHistogram(
          "qsched_stage_seconds",
          StrPrintf("class=\"%d\",stage=\"execute\"", class_id)),
  };
  return stage_hists_.emplace(class_id, hists).first->second;
}

void Gateway::Drain() {
  queue_.Close();
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
}

bool Gateway::WaitIdle(double timeout_wall_seconds) {
  std::unique_lock<std::mutex> lock(idle_mu_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(timeout_wall_seconds));
  return idle_cv_.wait_until(lock, deadline, [this] {
    return completed_.load(std::memory_order_acquire) >=
           admitted_.load(std::memory_order_acquire);
  });
}

}  // namespace qsched::rt
