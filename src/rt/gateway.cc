#include "rt/gateway.h"

#include <utility>

#include "common/strings.h"

namespace qsched::rt {

Gateway::Gateway(WallClock* clock, workload::QueryFrontend* frontend,
                 const GatewayOptions& options, obs::Telemetry* telemetry)
    : clock_(clock),
      frontend_(frontend),
      options_(options),
      queue_(options.queue_capacity),
      telemetry_(telemetry) {
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    depth_gauge_ = reg.GetGauge("qsched_rt_gateway_queue_depth");
    admission_latency_hist_ =
        reg.GetHistogram("qsched_rt_admission_latency_seconds");
    accepted_counter_ = reg.GetCounter("qsched_rt_accepted_total");
    rejected_counter_ = reg.GetCounter("qsched_rt_rejected_total");
    completed_counter_ = reg.GetCounter("qsched_rt_completed_total");
  }
}

Gateway::~Gateway() { Drain(); }

void Gateway::Start() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<harness::ThreadPool>(
      options_.workers < 1 ? 1 : options_.workers);
  // Long-running consume loops, one per worker; they return when the
  // queue is closed and drained.
  for (int i = 0; i < pool_->num_threads(); ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

bool Gateway::Offer(workload::Query query) {
  query.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  Item item{std::move(query), std::chrono::steady_clock::now()};
  if (!queue_.TryPush(std::move(item))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_counter_ != nullptr) rejected_counter_->Inc();
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    accepted_counter_->Inc();
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  return true;
}

bool Gateway::Submit(workload::Query query) {
  query.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  Item item{std::move(query), std::chrono::steady_clock::now()};
  if (!queue_.Push(std::move(item))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_counter_ != nullptr) rejected_counter_->Inc();
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    accepted_counter_->Inc();
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  return true;
}

void Gateway::WorkerLoop() {
  Item item;
  while (queue_.Pop(&item)) {
    double wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      item.enqueued)
            .count();
    if (telemetry_ != nullptr) {
      admission_latency_hist_->Record(wait_seconds);
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    // Count the admission before entering the frontend: a query can
    // complete synchronously (cancellation) or on the clock thread
    // before Submit even returns, and completed must never outrun
    // admitted or WaitIdle could report idle with work still queued.
    admitted_.fetch_add(1, std::memory_order_release);
    // The scheduler and everything behind it are single-threaded model
    // components: enter them only under the core lock.
    clock_->Run([&] {
      frontend_->Submit(item.query,
                        [this](const workload::QueryRecord& record) {
                          OnQueryComplete(record);
                        });
    });
  }
}

void Gateway::OnQueryComplete(const workload::QueryRecord& record) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    completed_counter_->Inc();
    ClassCompletedCounter(record.class_id)->Inc();
  }
  if (on_complete_) on_complete_(record);
  // Take the idle mutex before notifying so the store to completed_
  // cannot slip between a waiter's predicate check and its sleep.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
}

obs::Counter* Gateway::ClassCompletedCounter(int class_id) {
  std::lock_guard<std::mutex> lock(class_counter_mu_);
  auto it = class_completed_counters_.find(class_id);
  if (it != class_completed_counters_.end()) return it->second;
  obs::Counter* counter = telemetry_->registry.GetCounter(
      "qsched_rt_class_completed_total",
      StrPrintf("class=\"%d\"", class_id));
  class_completed_counters_.emplace(class_id, counter);
  return counter;
}

void Gateway::Drain() {
  queue_.Close();
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
}

bool Gateway::WaitIdle(double timeout_wall_seconds) {
  std::unique_lock<std::mutex> lock(idle_mu_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(timeout_wall_seconds));
  return idle_cv_.wait_until(lock, deadline, [this] {
    return completed_.load(std::memory_order_acquire) >=
           admitted_.load(std::memory_order_acquire);
  });
}

}  // namespace qsched::rt
