#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace qsched {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace qsched
