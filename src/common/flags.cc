#include "common/flags.h"

#include <cstdlib>

namespace qsched {

Status FlagParser::Parse(int argc, const char* const argv[]) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || arg.empty() || arg[0] != '-' || arg == "-") {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    size_t start = arg.find_first_not_of('-');
    if (start == std::string::npos || start > 2) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    std::string body = arg.substr(start);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag.
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";  // boolean style
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

Result<std::string> FlagParser::GetRaw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::NotFound("flag not given: " + name);
  }
  return it->second;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<int64_t>(value);
}

double FlagParser::GetDouble(const std::string& name,
                             double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') return fallback;
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  return fallback;
}

}  // namespace qsched
