#ifndef QSCHED_COMMON_LOGGING_H_
#define QSCHED_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Default
/// kInfo. The level is an atomic, so concurrent readers/writers are safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Test-only seam: when set, every formatted log line (without the
/// trailing newline) is passed to `sink` instead of being written to
/// stderr. Pass nullptr to restore stderr output. Function pointer (not
/// std::function) so the global needs no destructor and swapping it is a
/// single atomic store.
using LogSinkForTesting = void (*)(const std::string& line);
void SetLogSinkForTesting(LogSinkForTesting sink);

namespace internal {

/// Stream-style log line flushed to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define QSCHED_LOG(level)                                               \
  (::qsched::LogLevel::k##level < ::qsched::GetLogLevel())              \
      ? (void)0                                                         \
      : ::qsched::internal::LogVoidify() &                              \
            ::qsched::internal::LogMessage(::qsched::LogLevel::k##level, \
                                           __FILE__, __LINE__)          \
                .stream()

#define QSCHED_CHECK(condition)                                       \
  (condition) ? (void)0                                               \
              : ::qsched::internal::LogVoidify() &                    \
                    ::qsched::internal::FatalMessage(__FILE__, __LINE__) \
                        .stream()

namespace internal {

/// Allows the ?: in the macros above to have type void.
class LogVoidify {
 public:
  void operator&(std::ostream&) {}
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qsched

#endif  // QSCHED_COMMON_LOGGING_H_
