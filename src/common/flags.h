#ifndef QSCHED_COMMON_FLAGS_H_
#define QSCHED_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qsched {

/// Minimal command-line flag parser for the example binaries:
/// `--name=value` or `--name value`; `--flag` alone is boolean true.
/// Unknown positional arguments are collected in order.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed input
  /// (e.g. a value-taking flag at the end with no value is fine — it
  /// becomes boolean; "--" ends flag parsing).
  Status Parse(int argc, const char* const argv[]);

  bool Has(const std::string& name) const;

  /// Typed getters with defaults; conversion errors fall back to the
  /// default (callers that must distinguish use GetRaw).
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Raw value ("" for boolean-style flags); NotFound when absent.
  Result<std::string> GetRaw(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace qsched

#endif  // QSCHED_COMMON_FLAGS_H_
