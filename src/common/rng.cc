#include "common/rng.h"

#include <cmath>

namespace qsched {
namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextU64();
  while (value >= limit) value = NextU64();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0.0) u = 5e-324;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 5e-324;
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  if (lo >= hi) return lo;
  double u = NextDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0 || weights.size() <= 1) return 0;
  double draw = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t salt) {
  // splitmix-style scramble of a fresh draw for seed and stream.
  uint64_t z = NextU64() + 0x9e3779b97f4a7c15ULL + salt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z, salt * 2 + 1);
}

}  // namespace qsched
