#ifndef QSCHED_COMMON_STATUS_H_
#define QSCHED_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qsched {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value used across the library instead of
/// exceptions. Mirrors the Arrow/RocksDB convention: cheap to copy when OK,
/// carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-Status pair. `ValueOrDie()` aborts on error; callers that can
/// recover should test `ok()` and use `status()`.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status by design: lets functions
  /// `return value;` or `return Status::...;` interchangeably.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    AbortIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    AbortIfError();
    return *value_;
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status_);
}

/// Propagates a non-OK Status to the caller.
#define QSCHED_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::qsched::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace qsched

#endif  // QSCHED_COMMON_STATUS_H_
