#ifndef QSCHED_COMMON_STRINGS_H_
#define QSCHED_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace qsched {

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

}  // namespace qsched

#endif  // QSCHED_COMMON_STRINGS_H_
