#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qsched {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSinkForTesting> g_test_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSinkForTesting(LogSinkForTesting sink) {
  g_test_sink.store(sink, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  LogSinkForTesting sink = g_test_sink.load(std::memory_order_relaxed);
  if (sink != nullptr) {
    sink(line);
    return;
  }
  // One stream write per line: concurrent loggers may interleave whole
  // lines but never bytes within a line.
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  (void)level_;
}

FatalMessage::FatalMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] check failed: ";
}

FatalMessage::~FatalMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace qsched
