#ifndef QSCHED_COMMON_RNG_H_
#define QSCHED_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qsched {

/// Deterministic PCG32 pseudo-random generator (O'Neill's PCG-XSH-RR).
/// Every stochastic component in the library draws from an explicitly
/// seeded Rng so whole experiments replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0x2545f4914f6cdd1dULL);

  /// Uniform 32-bit value.
  uint32_t NextU32();
  /// Uniform 64-bit value.
  uint64_t NextU64();
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Exponential with the given mean (> 0).
  double Exponential(double mean);
  /// Normal via Box-Muller.
  double Normal(double mean, double stddev);
  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double LogNormal(double mu, double sigma);
  /// Bounded Pareto on [lo, hi] with shape alpha; models the heavy-tailed
  /// OLAP cost distribution.
  double BoundedPareto(double alpha, double lo, double hi);
  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);
  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Returns 0 when all weights are <= 0 or the vector has one element.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent generator for a component, keyed by `salt`.
  Rng Fork(uint64_t salt);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Box-Muller carry.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace qsched

#endif  // QSCHED_COMMON_RNG_H_
