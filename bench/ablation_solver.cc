// Ablation: Performance Solver search configuration — grid resolution,
// hill-climb refinement, change penalty, and online slope re-estimation
// (the fragile alternative to the paper's offline regression constant).
#include <cstdio>

#include "harness/experiment.h"

namespace {

void Run(const char* label, qsched::harness::ExperimentConfig config) {
  auto result = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQueryScheduler);
  std::printf("%-34s  class1=%2d/18 class2=%2d/18 class3=%2d/18  "
              "t3=%.3f s\n",
              label, result.periods_meeting_goal.at(1),
              result.periods_meeting_goal.at(2),
              result.periods_meeting_goal.at(3),
              result.overall_response.at(3));
}

}  // namespace

int main() {
  std::printf("=== Solver configuration ablation ===\n");
  {
    qsched::harness::ExperimentConfig config;
    Run("default (grid 2.5% + hill climb)", config);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.solver.grid_step = 0.10;
    Run("coarse grid 10%", config);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.solver.grid_step = 0.5;  // effectively disables the grid
    config.qs.solver.refine_steps = {0.02, 0.005};
    Run("hill climb only", config);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.solver.change_penalty = 0.0;
    Run("no change penalty", config);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.plan_step_fraction = 1.0;
    Run("no plan rate limiting", config);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.oltp_model.online_updates = true;
    Run("online slope re-estimation", config);
  }
  return 0;
}
