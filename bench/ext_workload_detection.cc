// Extension: the framework's workload-detection process (Section 2 of
// the paper) — arrival-rate monitoring, Holt trend prediction and CUSUM
// change detection — wired into the planner ("proactive" mode). Compares
// reactive (paper) vs. proactive planning on the Figure-3 schedule,
// whose every-period intensity jumps are exactly what change detection
// is for.
#include <cstdio>

#include "bench/figure_common.h"

int main() {
  std::printf("=== Workload detection: reactive (paper) vs proactive "
              "===\n");
  {
    qsched::harness::ExperimentConfig config;
    std::printf("--- reactive (measurement-driven only) ---\n");
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    qsched::bench::PrintPerformanceFigure(result);
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.proactive_planning = true;
    std::printf("\n--- proactive (trend prediction + change-triggered "
                "fast adaptation) ---\n");
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    qsched::bench::PrintPerformanceFigure(result);
  }
  return 0;
}
