// Section 3's claim: directly controlling the OLTP workload through the
// interceptor is impractical — the interception overhead "significantly
// outweighed the sub-second execution time of the OLTP queries". This
// bench measures OLTP response with interception off (the paper's
// choice), on (what direct QP control would cost), and with the
// future-work in-engine overhead.
#include <cstdio>

#include "harness/experiment.h"
#include "metrics/period_collector.h"
#include "workload/client.h"

using namespace qsched;

namespace {

double RunOltpOnly(bool intercept, double delay, double cpu) {
  harness::ExperimentConfig config;
  sim::Simulator simulator;
  Rng master(config.seed);
  engine::ExecutionEngine engine(&simulator, config.engine, master.Fork(1));

  workload::WorkloadSchedule schedule(600.0, {3});
  schedule.AddPeriod({20});

  qp::QpStaticConfig qp_config =
      qp::QpStaticConfig::NoControl(config.system_cost_limit);
  qp_config.intercept_oltp = intercept;
  qp::InterceptorConfig interceptor = config.interceptor;
  interceptor.interception_delay_seconds = delay;
  interceptor.interception_cpu_seconds = cpu;
  qp::QpController controller(&simulator, &engine, interceptor, qp_config);

  workload::TpccWorkload gen(config.tpcc, config.seed + 3);
  metrics::PeriodCollector collector(&schedule);
  workload::ClientPool pool(&simulator, &schedule, 3, &gen, &controller,
                            [&collector](const workload::QueryRecord& r) {
                              collector.Add(r);
                            });
  pool.Start();
  simulator.RunUntil(schedule.total_seconds());
  return collector.Get(0, 3).MeanResponse();
}

}  // namespace

int main() {
  std::printf("=== Direct OLTP control overhead (20 OLTP clients, no "
              "OLAP) ===\n");
  double off = RunOltpOnly(false, 0.35, 0.02);
  double on = RunOltpOnly(true, 0.35, 0.02);
  double in_engine = RunOltpOnly(true, 0.002, 0.0005);
  std::printf("interception off (paper's choice):      %.3f s\n", off);
  std::printf("interception on (QP overhead 0.35 s):   %.3f s  (%.1fx)\n",
              on, on / off);
  std::printf("in-engine control (future work, ~2 ms): %.3f s  (%.2fx)\n",
              in_engine, in_engine / off);
  std::printf("goal: 0.25 s -> direct QP control alone blows the SLO\n");
  return 0;
}
