// Ablation (Section 3.3): the snapshot sampling interval "must not be
// too small, which will incur significant overhead, nor too large, which
// would decrease accuracy". Sweep the interval and report the OLTP
// outcome plus the monitoring overhead burned.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  std::printf("=== Snapshot sampling interval ablation ===\n");
  std::printf("interval_s  class3_periods_met  class3_mean_resp  "
              "class1_met  class2_met\n");
  for (double interval : {1.0, 5.0, 10.0, 30.0, 60.0, 120.0}) {
    qsched::harness::ExperimentConfig config;
    config.qs.snapshot.sample_interval_seconds = interval;
    // A 1-s sampling interval reading every client row is expensive;
    // model it faithfully.
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    std::printf("%10.0f  %18d  %16.3f  %10d  %10d\n", interval,
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3),
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2));
  }
  return 0;
}
