// Ablation (Section 3.3): the snapshot sampling interval "must not be
// too small, which will incur significant overhead, nor too large, which
// would decrease accuracy". Sweep the interval and report the OLTP
// outcome plus the monitoring overhead burned.
//
// The sweep points are independent runs; --jobs=J (0 = hardware
// threads) fans them out across workers, printing in sweep order.
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/parallel.h"

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  int jobs = static_cast<int>(flags.GetInt("jobs", 1));

  const std::vector<double> intervals = {1.0, 5.0, 10.0, 30.0, 60.0,
                                         120.0};
  std::vector<qsched::harness::ExperimentResult> results(intervals.size());
  qsched::harness::ParallelFor(
      static_cast<int>(intervals.size()), jobs, [&](int i) {
        qsched::harness::ExperimentConfig config;
        // A 1-s sampling interval reading every client row is expensive;
        // model it faithfully.
        config.qs.snapshot.sample_interval_seconds = intervals[i];
        results[i] = qsched::harness::RunExperiment(
            config, qsched::harness::ControllerKind::kQueryScheduler);
      });

  std::printf("=== Snapshot sampling interval ablation ===\n");
  std::printf("interval_s  class3_periods_met  class3_mean_resp  "
              "class1_met  class2_met\n");
  for (size_t i = 0; i < intervals.size(); ++i) {
    const auto& result = results[i];
    std::printf("%10.0f  %18d  %16.3f  %10d  %10d\n", intervals[i],
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3),
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2));
  }
  return 0;
}
