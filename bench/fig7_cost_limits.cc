// Figure 7: the class cost limits Query Scheduler chooses over time.
// The paper's findings: Class 3 (highest importance) holds few resources
// while its load is light, takes more than half the system when its load
// is heavy, and gets *less* in period 18 than in 3/6/9 because the other
// classes are heaviest there.
#include <cstdio>

#include "bench/figure_common.h"
#include "harness/experiment.h"
#include "obs/telemetry.h"

int main(int argc, char** argv) {
  qsched::harness::ExperimentConfig config;
  qsched::obs::Telemetry telemetry;
  const char* report = qsched::bench::ReportHtmlPath(argc, argv);
  if (report != nullptr) config.telemetry = &telemetry;
  std::printf("=== Figure 7: adjustment of class cost limits (timerons) "
              "===\n");
  auto result = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQueryScheduler);
  std::printf("period  class1_limit  class2_limit  class3_limit  "
              "class3_share\n");
  double total = config.system_cost_limit;
  for (int p = 0; p < result.num_periods; ++p) {
    double c1 = result.period_mean_limits.at(1)[p];
    double c2 = result.period_mean_limits.at(2)[p];
    double c3 = result.period_mean_limits.at(3)[p];
    std::printf("%6d  %12.0f  %12.0f  %12.0f  %11.2f%%\n", p + 1, c1, c2,
                c3, 100.0 * c3 / total);
  }
  if (report != nullptr) {
    qsched::bench::WriteHtmlReport(report, result, &telemetry,
                                   "Figure 7: class cost limits");
  }
  return 0;
}
