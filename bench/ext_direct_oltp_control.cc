// Future-work extension (Section 5): the most effective way to manage
// OLTP is to control it directly, which requires the control mechanism
// to live inside the DBMS (near-zero interception overhead). This bench
// runs the full Figure-6 experiment with Query Scheduler in direct-OLTP
// mode and compares against the paper's indirect mode.
#include <cstdio>

#include "bench/figure_common.h"

int main() {
  qsched::harness::ExperimentConfig config;
  std::printf("=== Extension: direct OLTP control (in-engine, ~2 ms "
              "overhead) ===\n");
  auto direct = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQsDirectOltp);
  qsched::bench::PrintPerformanceFigure(direct);

  std::printf("\n--- paper's indirect control, for comparison ---\n");
  auto indirect = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQueryScheduler);
  qsched::bench::PrintPerformanceFigure(indirect);
  return 0;
}
