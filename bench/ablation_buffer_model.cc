// Ablation: validates the analytic buffer-pool model (working-set
// formula + binomial miss sampling) against an actual CLOCK pool
// replaying the same access patterns. The analytic model is what the
// engine runs (page-level simulation of multi-gigabyte scans would
// dominate the event budget); this bench quantifies what that
// approximation costs.
#include <cstdio>

#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "engine/clock_buffer_pool.h"

using qsched::Rng;
using qsched::engine::BufferPool;
using qsched::engine::ClockBufferPool;

namespace {

void OltpPattern() {
  // OLTP: random probes over a hot set that fits in the pool, from
  // tables far larger than it.
  const uint64_t kPoolPages = 16000;
  const double kHotPages = 32000.0;  // 2x the pool: partial residency
  ClockBufferPool clock_pool(kPoolPages, 32);
  BufferPool analytic(kPoolPages, 4.0, 0.86);
  Rng rng(5);
  double analytic_logical = 0.0, analytic_physical = 0.0;
  double hit = analytic.HitProbability(kHotPages);
  for (int i = 0; i < 60000; ++i) {
    double start = rng.Uniform(0.0, kHotPages - 8.0);
    double pages = rng.Uniform(1.0, 8.0);
    clock_pool.Access(1, start, pages);
    analytic_logical += pages;
    analytic_physical += analytic.SamplePhysicalPages(pages, hit, &rng);
  }
  std::printf("OLTP hot-set probes: clock hit=%.3f  analytic hit=%.3f\n",
              clock_pool.HitRatio(),
              1.0 - analytic_physical / analytic_logical);
}

void OlapPattern() {
  // OLAP: repeated sequential scans over data 6x the pool.
  const uint64_t kPoolPages = 20000;
  const double kTablePages = 120000.0;
  ClockBufferPool clock_pool(kPoolPages, 32);
  BufferPool analytic(kPoolPages, 2.0, 0.97);
  Rng rng(7);
  double analytic_logical = 0.0, analytic_physical = 0.0;
  double hit = analytic.HitProbability(kTablePages);
  for (int scan = 0; scan < 6; ++scan) {
    for (double offset = 0.0; offset < kTablePages; offset += 512.0) {
      clock_pool.Access(2, offset, 512.0);
      analytic_logical += 512.0;
      analytic_physical +=
          analytic.SamplePhysicalPages(512.0, hit, &rng);
    }
  }
  std::printf("OLAP repeated scans:  clock hit=%.3f  analytic hit=%.3f\n",
              clock_pool.HitRatio(),
              1.0 - analytic_physical / analytic_logical);
}

void MixedPattern() {
  // Mixed: hot probes competing with a scan for the same pool — the
  // scan-resistance case where CLOCK's second chance matters.
  const uint64_t kPoolPages = 16000;
  ClockBufferPool clock_pool(kPoolPages, 32);
  Rng rng(9);
  double probe_logical = 0.0, probe_physical = 0.0;
  for (int round = 0; round < 400; ++round) {
    for (int p = 0; p < 50; ++p) {
      double start = rng.Uniform(0.0, 8000.0);
      double pages = rng.Uniform(1.0, 6.0);
      probe_logical += pages;
      probe_physical += clock_pool.Access(1, start, pages);
    }
    clock_pool.Access(2, round * 512.0, 512.0);  // advancing scan
  }
  std::printf("Mixed (hot vs scan):  clock probe-hit=%.3f "
              "(second chance protects the hot set)\n",
              1.0 - probe_physical / probe_logical);
}

}  // namespace

int main() {
  std::printf("=== Buffer model validation: analytic vs CLOCK ===\n");
  OltpPattern();
  OlapPattern();
  MixedPattern();
  return 0;
}
