// Component micro-benchmarks (google-benchmark): the hot paths of the
// simulator and the control plane. These bound how much simulated load
// the harness can drive and how expensive one planning cycle is.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/resources.h"
#include "optimizer/cost_model.h"
#include "scheduler/solver.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace {

using namespace qsched;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.ScheduleAt(static_cast<double>(i % 97), [&fired] {
        ++fired;
      });
    }
    simulator.RunToCompletion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_ProcessorSharing(benchmark::State& state) {
  int64_t jobs = state.range(0);
  for (auto _ : state) {
    sim::Simulator simulator;
    engine::ProcessorSharingPool pool(&simulator, 2);
    for (int64_t i = 0; i < jobs; ++i) {
      pool.Submit(0.01 * (1 + i % 7), [] {});
    }
    simulator.RunToCompletion();
    benchmark::DoNotOptimize(pool.busy_core_seconds());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_ProcessorSharing)->Arg(16)->Arg(64)->Arg(256);

void BM_TpchCostEstimate(benchmark::State& state) {
  workload::TpchWorkloadParams params;
  workload::TpchWorkload workload(params, 7);
  for (auto _ : state) {
    workload::Query q = workload.Next();
    benchmark::DoNotOptimize(q.cost_timerons);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpchCostEstimate);

void BM_TpccCostEstimate(benchmark::State& state) {
  workload::TpccWorkloadParams params;
  workload::TpccWorkload workload(params, 9);
  for (auto _ : state) {
    workload::Query q = workload.Next();
    benchmark::DoNotOptimize(q.cost_timerons);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpccCostEstimate);

void BM_SolverSolve(benchmark::State& state) {
  sched::ServiceClassSet classes = sched::MakePaperClasses();
  sched::OltpResponseModel model;
  sched::SolverInput input;
  input.total_cost_limit = 300000;
  input.oltp_model = &model;
  input.classes = {
      {classes.Find(1), 0.35, 90000, false},
      {classes.Find(2), 0.55, 120000, false},
      {classes.Find(3), 0.28, 90000, false},
  };
  sched::PerformanceSolver solver;
  for (auto _ : state) {
    sched::SchedulingPlan plan = solver.Solve(input);
    benchmark::DoNotOptimize(plan.predicted_utility);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverSolve);

void BM_RngDraws(benchmark::State& state) {
  Rng rng(1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.BoundedPareto(1.2, 1.0, 1e6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

void BM_HistogramQuantile(benchmark::State& state) {
  sim::Histogram histogram(0.001, 1000.0);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    histogram.Add(rng.LogNormal(0.0, 2.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Quantile(0.95));
  }
}
BENCHMARK(BM_HistogramQuantile);

}  // namespace

BENCHMARK_MAIN();
