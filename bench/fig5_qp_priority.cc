// Figure 5: DB2 Query Patroller static control with priority — large/
// medium/small cost groups, a static OLAP cost limit, and Class 2
// prioritized over Class 1. The paper's finding: Class 2 always beats
// Class 1, but the OLTP class misses its goal whenever its intensity is
// high (periods 3, 6, 9, 12, 15, 18) and in period 17 (high OLAP).
#include <cstdio>

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  qsched::harness::ExperimentConfig config;
  std::printf("=== Figure 5: DB2 QP priority control ===\n");
  auto result = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQpPriority);
  qsched::bench::PrintPerformanceFigure(result);
  const char* report = qsched::bench::ReportHtmlPath(argc, argv);
  if (report != nullptr) {
    qsched::bench::WriteHtmlReport(report, result, nullptr,
                                   "Figure 5: DB2 QP priority control");
  }

  std::printf("\n--- QP without priority (paper: behaves like no control "
              "between the OLAP classes) ---\n");
  auto flat = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQpNoPriority);
  qsched::bench::PrintPerformanceFigure(flat);
  return 0;
}
