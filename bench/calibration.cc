// Calibration diagnostic: prints the workload cost distributions, the
// Fig. 2 mechanism preview (OLTP response vs. OLAP cost limit), and the
// throughput-vs-system-cost-limit curve used to pick the under-saturation
// knee. Run this after changing any engine or cost-model constant.
#include <cstdio>

#include "harness/experiment.h"
#include "sim/stats.h"

namespace {

using qsched::harness::ExperimentConfig;
using qsched::harness::MeasureOltpResponse;
using qsched::sim::Percentile;

void PrintCostDistribution() {
  ExperimentConfig config;
  qsched::workload::TpchWorkload olap(config.tpch, 11);
  std::vector<double> costs = olap.SampleCosts(2000);
  double mean = 0.0;
  for (double c : costs) mean += c;
  mean /= costs.size();
  std::printf("OLAP cost timerons: mean=%.0f p10=%.0f p50=%.0f p80=%.0f "
              "p95=%.0f max=%.0f\n",
              mean, Percentile(costs, 0.10), Percentile(costs, 0.50),
              Percentile(costs, 0.80), Percentile(costs, 0.95),
              Percentile(costs, 1.0));

  qsched::workload::TpccWorkload oltp(config.tpcc, 12);
  std::vector<double> tcosts = oltp.SampleCosts(2000);
  double tmean = 0.0;
  for (double c : tcosts) tmean += c;
  tmean /= tcosts.size();
  std::printf("OLTP cost timerons: mean=%.1f p50=%.1f p95=%.1f max=%.1f\n",
              tmean, Percentile(tcosts, 0.50), Percentile(tcosts, 0.95),
              Percentile(tcosts, 1.0));

  // True demand of a few OLAP draws.
  for (int i = 0; i < 6; ++i) {
    qsched::workload::Query q = olap.Next();
    std::printf("  olap %-4s cost=%8.0f cpu=%6.2fs pages=%8.0f hit=%.2f\n",
                q.template_name.c_str(), q.cost_timerons,
                q.job.cpu_seconds, q.job.logical_pages, q.job.hit_ratio);
  }
  for (int i = 0; i < 4; ++i) {
    qsched::workload::Query q = oltp.Next();
    std::printf("  oltp %-12s cost=%6.1f cpu=%6.4fs pages=%6.1f hit=%.2f\n",
                q.template_name.c_str(), q.cost_timerons,
                q.job.cpu_seconds, q.job.logical_pages, q.job.hit_ratio);
  }
}

void PrintFig2Preview() {
  std::printf("\nFig2 preview: OLTP avg response vs OLAP cost limit "
              "(25 OLTP, 8 OLAP clients, 480s)\n");
  ExperimentConfig config;
  for (double limit = 50000; limit <= 450000; limit += 50000) {
    double olap_tput = 0.0;
    double resp = MeasureOltpResponse(config, 25, 8, limit, 480.0,
                                      &olap_tput);
    std::printf("  limit=%7.0f oltp_resp=%.3fs olap_tput=%.3f/s\n", limit,
                resp, olap_tput);
  }
}

void PrintKneeCurve() {
  std::printf("\nSystem cost limit curve: OLAP throughput vs limit "
              "(12 OLAP clients, no OLTP, 480s)\n");
  ExperimentConfig config;
  for (double limit = 50000; limit <= 600000; limit += 50000) {
    double olap_tput = 0.0;
    MeasureOltpResponse(config, 0, 12, limit, 480.0, &olap_tput);
    std::printf("  limit=%7.0f olap_tput=%.3f/s\n", limit, olap_tput);
  }
}

}  // namespace

int main() {
  PrintCostDistribution();
  PrintFig2Preview();
  PrintKneeCurve();
  return 0;
}
