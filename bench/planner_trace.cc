// Scratch probe: the Figure-3 schedule under Query Scheduler, printing
// the planner's measurements and decisions every control interval next
// to ground truth from the completion stream.
#include <cstdio>
#include <memory>

#include "harness/experiment.h"
#include "metrics/period_collector.h"
#include "workload/client.h"

using namespace qsched;

namespace {

struct IntervalTruth {
  double v1_sum = 0, t3_sum = 0;
  int n1 = 0, n3 = 0;
  double v2_sum = 0;
  int n2 = 0;
  void Add(const workload::QueryRecord& r) {
    if (r.class_id == 1) {
      v1_sum += r.Velocity();
      ++n1;
    } else if (r.class_id == 2) {
      v2_sum += r.Velocity();
      ++n2;
    } else {
      t3_sum += r.ResponseSeconds();
      ++n3;
    }
  }
  void Reset() { *this = IntervalTruth(); }
};

}  // namespace

int main() {
  harness::ExperimentConfig config;
  sim::Simulator simulator;
  Rng master(config.seed);
  engine::ExecutionEngine engine(&simulator, config.engine, master.Fork(1));

  workload::WorkloadSchedule schedule =
      workload::MakeFigure3Schedule(config.period_seconds);
  sched::ServiceClassSet classes = sched::MakePaperClasses();

  sched::QuerySchedulerConfig qs_config = config.qs;
  qs_config.system_cost_limit = config.system_cost_limit;
  qs_config.interceptor = config.interceptor;
  sched::QueryScheduler qs(&simulator, &engine, &classes, qs_config);
  double total = schedule.total_seconds();
  qs.Start(total);

  workload::TpchWorkload gen1(config.tpch, 101);
  workload::TpchWorkload gen2(config.tpch, 102);
  workload::TpccWorkload gen3(config.tpcc, 103);
  IntervalTruth truth;
  auto sink = [&truth](const workload::QueryRecord& r) { truth.Add(r); };
  workload::ClientPool p1(&simulator, &schedule, 1, &gen1, &qs, sink);
  workload::ClientPool p2(&simulator, &schedule, 2, &gen2, &qs, sink);
  workload::ClientPool p3(&simulator, &schedule, 3, &gen3, &qs, sink);
  p1.Start();
  p2.Start();
  p3.Start();

  double interval = qs_config.control_interval_seconds;
  for (double t = interval; t <= total; t += interval) {
    simulator.RunUntil(t);
    const auto& m = qs.measurements();
    const auto& plan = qs.current_plan();
    int period = schedule.PeriodAt(t - 1.0) + 1;
    std::printf(
        "p%02d t=%6.0f meas v1=%.2f v2=%.2f t3=%.3f | true v1=%.2f(%d) "
        "v2=%.2f(%d) t3=%.3f(%d) | plan %6.0f %6.0f %6.0f\n",
        period, t, m.at(1), m.at(2), m.at(3),
        truth.n1 ? truth.v1_sum / truth.n1 : -1, truth.n1,
        truth.n2 ? truth.v2_sum / truth.n2 : -1, truth.n2,
        truth.n3 ? truth.t3_sum / truth.n3 : -1, truth.n3,
        plan.LimitFor(1), plan.LimitFor(2), plan.LimitFor(3));
    truth.Reset();
  }
  return 0;
}
