// Figure 2: OLTP average response time as a function of the total OLAP
// cost limit, for several (OLTP clients, OLAP clients) mixes. The paper
// observes a near-linear relationship while the system is under-saturated
// (below the ~300K-timeron knee); the slope of this regression is the `s`
// constant of the OLTP performance model.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

int main() {
  qsched::harness::ExperimentConfig config;
  // The paper's legend pairs (OLTP clients, OLAP clients); OCR loses the
  // exact values, so the reproduction uses mixes spanning the same design:
  // three OLAP intensities at fixed OLTP, plus a heavier-OLTP mix.
  const std::vector<std::pair<int, int>> mixes = {
      {25, 4}, {25, 8}, {25, 2}, {15, 8}};
  const double duration = 720.0;

  std::printf("=== Figure 2: OLTP avg response (s) vs OLAP cost limit ===\n");
  std::printf("olap_limit");
  for (const auto& [oltp, olap] : mixes) {
    std::printf("  (%d,%d)", oltp, olap);
  }
  std::printf("\n");

  std::vector<std::vector<double>> columns(mixes.size());
  std::vector<double> limits;
  for (double limit = 50000; limit <= 400000; limit += 50000) {
    limits.push_back(limit);
    std::printf("%10.0f", limit);
    for (size_t i = 0; i < mixes.size(); ++i) {
      double resp = qsched::harness::MeasureOltpResponse(
          config, mixes[i].first, mixes[i].second, limit, duration);
      columns[i].push_back(resp);
      std::printf("  %7.3f", resp);
    }
    std::printf("\n");
  }

  // Least-squares slope over the under-saturated region (<= 300K) for the
  // heaviest mix: this is the model constant `s`.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < limits.size(); ++i) {
    if (limits[i] > 300000) continue;
    sx += limits[i];
    sy += columns[1][i];
    sxx += limits[i] * limits[i];
    sxy += limits[i] * columns[1][i];
    ++n;
  }
  double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::printf("regression over (25,8) mix, limits <= 300K: "
              "s = %.3g s/timeron\n", slope);
  return 0;
}
