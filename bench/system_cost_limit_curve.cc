// Methodology experiment from Section 2: the system cost limit is chosen
// by plotting throughput against the cost limit and picking the knee
// where the system is still "healthy or under-saturated". The paper's
// value — and this reproduction's calibration — is ~300K timerons.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  qsched::harness::ExperimentConfig config;
  std::printf("=== System cost limit selection: OLAP throughput vs cost "
              "limit (24 OLAP clients, no OLTP) ===\n");
  std::printf("cost_limit  olap_throughput_per_s\n");
  for (double limit = 50000; limit <= 600000; limit += 50000) {
    double tput = 0.0;
    qsched::harness::MeasureOltpResponse(config, 0, 24, limit, 720.0,
                                         &tput);
    std::printf("%10.0f  %21.3f\n", limit, tput);
  }
  std::printf("(pick the knee: throughput stops improving near 300-350K "
              "while queueing keeps growing)\n");
  return 0;
}
