// Ablation: length of the Scheduling Planner's control interval. Short
// intervals react fast but see few OLAP completions per interval (noisy
// velocity estimates); long intervals lag the workload shifts.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  std::printf("=== Control interval ablation ===\n");
  std::printf("interval_s  class1_met  class2_met  class3_met  "
              "class3_mean_resp\n");
  for (double interval : {15.0, 30.0, 60.0, 120.0, 300.0}) {
    qsched::harness::ExperimentConfig config;
    config.qs.control_interval_seconds = interval;
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    std::printf("%10.0f  %10d  %10d  %10d  %16.3f\n", interval,
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2),
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3));
  }
  return 0;
}
