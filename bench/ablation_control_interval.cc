// Ablation: length of the Scheduling Planner's control interval. Short
// intervals react fast but see few OLAP completions per interval (noisy
// velocity estimates); long intervals lag the workload shifts.
//
// The sweep points are independent runs; --jobs=J (0 = hardware
// threads) fans them out across workers, printing in sweep order.
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/parallel.h"

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  int jobs = static_cast<int>(flags.GetInt("jobs", 1));

  const std::vector<double> intervals = {15.0, 30.0, 60.0, 120.0, 300.0};
  std::vector<qsched::harness::ExperimentResult> results(intervals.size());
  qsched::harness::ParallelFor(
      static_cast<int>(intervals.size()), jobs, [&](int i) {
        qsched::harness::ExperimentConfig config;
        config.qs.control_interval_seconds = intervals[i];
        results[i] = qsched::harness::RunExperiment(
            config, qsched::harness::ControllerKind::kQueryScheduler);
      });

  std::printf("=== Control interval ablation ===\n");
  std::printf("interval_s  class1_met  class2_met  class3_met  "
              "class3_mean_resp\n");
  for (size_t i = 0; i < intervals.size(); ++i) {
    const auto& result = results[i];
    std::printf("%10.0f  %10d  %10d  %10d  %16.3f\n", intervals[i],
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2),
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3));
  }
  return 0;
}
