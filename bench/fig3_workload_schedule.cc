// Figure 3: the experiment's workload-intensity schedule — client counts
// per class over the 18 periods, plus the reproduction's time scale.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  qsched::harness::ExperimentConfig config;
  qsched::workload::WorkloadSchedule schedule =
      qsched::workload::MakeFigure3Schedule(config.period_seconds);

  std::printf("=== Figure 3: workload schedule ===\n");
  std::printf("periods=%d period_seconds=%.0f (paper: 18 x 80 min)\n",
              schedule.num_periods(), schedule.period_seconds());
  std::printf("period  class1_clients  class2_clients  class3_clients\n");
  for (int p = 0; p < schedule.num_periods(); ++p) {
    std::printf("%6d  %14d  %14d  %14d\n", p + 1,
                schedule.ClientsFor(p, 1), schedule.ClientsFor(p, 2),
                schedule.ClientsFor(p, 3));
  }
  return 0;
}
