// Extension: open-loop (Poisson) arrivals vs. the paper's closed-loop
// clients, under no-control admission. Closed loops self-throttle — each
// client has one query in flight — so overload shows up as response
// inflation bounded by the population. Open loops keep arriving; past
// saturation the queue (and response) grows without bound. The contrast
// matters when interpreting any admission-control result.
#include <cstdio>
#include <memory>

#include "harness/experiment.h"
#include "metrics/period_collector.h"
#include "workload/client.h"
#include "workload/open_loop.h"

using namespace qsched;

namespace {

void RunOpenLoop(double per_client_rate) {
  harness::ExperimentConfig config;
  sim::Simulator simulator;
  Rng master(config.seed);
  engine::ExecutionEngine engine(&simulator, config.engine, master.Fork(1));

  workload::WorkloadSchedule schedule(600.0, {1, 3});
  schedule.AddPeriod({6, 20});
  qp::QpStaticConfig qp_config =
      qp::QpStaticConfig::NoControl(config.system_cost_limit);
  qp::QpController controller(&simulator, &engine, config.interceptor,
                              qp_config);

  workload::TpchWorkload olap_gen(config.tpch, 31);
  workload::TpccWorkload oltp_gen(config.tpcc, 32);
  metrics::PeriodCollector collector(&schedule);
  auto sink = [&collector](const workload::QueryRecord& r) {
    collector.Add(r);
  };

  // OLAP arrives open-loop; OLTP stays closed-loop (interactive users).
  workload::OpenLoopSource olap(&simulator, &schedule, 1, &olap_gen,
                                &controller, sink, per_client_rate, 33);
  workload::ClientPool oltp(&simulator, &schedule, 3, &oltp_gen,
                            &controller, sink);
  olap.Start();
  oltp.Start();
  simulator.RunUntil(schedule.total_seconds());

  const metrics::PeriodClassStats& olap_cell = collector.Get(0, 1);
  const metrics::PeriodClassStats& oltp_cell = collector.Get(0, 3);
  std::printf("%15.4f  %9llu  %11llu  %9.3f  %12.3f  %10.3f\n",
              per_client_rate * 6.0,
              static_cast<unsigned long long>(olap.queries_submitted()),
              static_cast<unsigned long long>(olap.queries_outstanding()),
              olap_cell.MeanVelocity(), olap_cell.MeanResponse(),
              oltp_cell.MeanResponse());
}

}  // namespace

int main() {
  std::printf("=== Open-loop OLAP arrivals under no-control (600 s, 6 "
              "virtual clients, 20 OLTP clients) ===\n");
  std::printf("olap_arrivals/s  submitted  outstanding  olap_vel  "
              "olap_resp_s  oltp_resp\n");
  // Closed-loop equivalent throughput is ~0.1/s; sweep across it.
  for (double rate : {0.005, 0.01, 0.02, 0.03, 0.05}) {
    RunOpenLoop(rate);
  }
  std::printf("(past ~0.1 arrivals/s the backlog grows without bound — "
              "closed loops cannot show this)\n");
  return 0;
}
