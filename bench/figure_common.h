#ifndef QSCHED_BENCH_FIGURE_COMMON_H_
#define QSCHED_BENCH_FIGURE_COMMON_H_

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/html_report.h"
#include "harness/report.h"

namespace qsched::bench {

/// Prints a Figure 4/5/6-style table for the paper's three classes.
inline void PrintPerformanceFigure(const harness::ExperimentResult& r) {
  harness::ReportOptions options;
  harness::PrintPerformanceReport(r, sched::MakePaperClasses(), options,
                                  std::cout);
}

/// Returns the PATH of a `--report-html=PATH` argument, or nullptr when
/// absent. The fig benches check this before running so they can enable
/// telemetry for the run the report will describe.
inline const char* ReportHtmlPath(int argc, char** argv) {
  const char kPrefix[] = "--report-html=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      return argv[i] + sizeof(kPrefix) - 1;
    }
  }
  return nullptr;
}

/// Writes the self-contained HTML run report for `result` to `path`.
/// Pass the run's telemetry when it had one; nullptr falls back to the
/// per-period figure series.
inline void WriteHtmlReport(const char* path,
                            const harness::ExperimentResult& result,
                            const obs::Telemetry* telemetry,
                            const std::string& title) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  harness::HtmlReportOptions options;
  options.title = title;
  harness::WriteHtmlRunReport(result, sched::MakePaperClasses(),
                              telemetry, options, out);
  std::cout << "wrote " << path << "\n";
}

}  // namespace qsched::bench

#endif  // QSCHED_BENCH_FIGURE_COMMON_H_
