#ifndef QSCHED_BENCH_FIGURE_COMMON_H_
#define QSCHED_BENCH_FIGURE_COMMON_H_

#include <iostream>

#include "harness/report.h"

namespace qsched::bench {

/// Prints a Figure 4/5/6-style table for the paper's three classes.
inline void PrintPerformanceFigure(const harness::ExperimentResult& r) {
  harness::ReportOptions options;
  harness::PrintPerformanceReport(r, sched::MakePaperClasses(), options,
                                  std::cout);
}

}  // namespace qsched::bench

#endif  // QSCHED_BENCH_FIGURE_COMMON_H_
