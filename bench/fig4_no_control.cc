// Figure 4: baseline with no class control — only the system cost limit
// gates admission. Shows how class performance swings with workload
// intensity when nothing differentiates the classes.
#include <cstdio>

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  qsched::harness::ExperimentConfig config;
  std::printf("=== Figure 4: performance with no class control ===\n");
  auto result = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kNoControl);
  qsched::bench::PrintPerformanceFigure(result);
  const char* report = qsched::bench::ReportHtmlPath(argc, argv);
  if (report != nullptr) {
    // No control loop: the report falls back to the per-period series.
    qsched::bench::WriteHtmlReport(report, result, nullptr,
                                   "Figure 4: no class control");
  }
  return 0;
}
