// Performance benchmark harness, the repo's tracked perf trajectory:
//
//   1. Event-queue throughput (events/sec) of the flat 4-ary-heap
//      simulator vs. an embedded copy of the historical
//      std::priority_queue + std::function + lazy-cancel design, on an
//      identical self-scheduling + cancel-churn workload.
//   2. A full Figure 6 (Query Scheduler) run: wall seconds and
//      simulator events/sec end to end.
//   3. N-way replication, serial (--jobs 1) vs parallel (--jobs J)
//      wall-clock.
//   4. Real-time gateway throughput: a wall-clock run of the rt runtime
//      (MPMC queue -> gateway workers -> live control loop) reporting
//      sustained submission QPS, p50/p99 admission latency and
//      completions/sec including the drain.
//   5. Network loopback throughput: the same runtime behind the TCP
//      front-end (src/net, multi-reactor), driven by the pipelined
//      multi-connection remote load generator over 127.0.0.1.
//      Sustained QPS counts the feed phase only (the drain tail is
//      reported separately), so it measures the serving path, not the
//      simulated executions it waits out at the end.
//   5b. Network loopback latency: the same stack at a fixed 1500 QPS
//      operating point with blocking (non-pipelined) submission, a
//      compressed execution scale (--net-latency-time-scale, default
//      6000) and a light OLAP profile (TPC-H SF 0.01), reporting
//      p50/p99 on-wire round-trip (submit to COMPLETED arrival). At the
//      throughput section's time_scale 60 / SF 0.1 the RTT p99 floor is
//      the simulated OLAP execution itself (tens of model seconds =
//      hundreds of wall milliseconds); compressing execution exposes
//      what the serving path adds on top. QSCHED_BENCH_STAGES=1 prints
//      the per-class per-stage p50/p99 breakdown.
//   5c. Cluster loopback: the same operating point twice — direct to
//      one backend, then through the cluster router (src/cluster) over
//      N backends — reporting both sustained QPS numbers and the added
//      round-trip p99 of the router hop. Both passes run below
//      saturation so the delta isolates the hop, not queueing at a
//      different load regime.
//   6. HTTP observability overhead: the rt gateway benchmark with the
//      embedded exposition server attached and a 1 Hz /metrics scraper
//      running, vs fully detached — the scrape path must cost <= 2% of
//      completion throughput.
//   7. Replay capture overhead: the rt gateway benchmark with a
//      TraceRecorder hooked at the gateway's offer point
//      (--capture-trace in the CLIs) vs without — the per-offer record
//      into the per-thread buffer must cost <= 2% of completion
//      throughput, and the recorder must capture every offered query
//      (captured + dropped == offered).
//
// Emits a JSON report (scripts/run_bench.sh writes it to
// BENCH_qsched.json at the repo root). All numbers are host-dependent;
// `hardware_concurrency` is included so the replication speedup is
// interpretable.
//
//   ./build/bench/perf_bench --events=2000000 --outstanding=512 \
//       --fig6-period-seconds=600 --replications=8 --jobs=4 \
//       --rep-period-seconds=120 --out=BENCH_qsched.json
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/router.h"
#include "common/flags.h"
#include "common/rng.h"
#include "harness/parallel.h"
#include "harness/replication.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "replay/recorder.h"
#include "rt/loadgen.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "sim/simulator.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The pre-rewrite simulator core, kept verbatim as the measurement
/// baseline: binary heap via std::priority_queue, type-erased callbacks
/// via std::function (heap-allocating for captures beyond its SBO), and
/// lazy cancellation through two unordered_sets.
class BaselineSimulator {
 public:
  using EventId = uint64_t;

  double Now() const { return now_; }

  EventId ScheduleAt(double when, std::function<void()> fn) {
    if (when < now_) when = now_;
    EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn)});
    pending_ids_.insert(id);
    return id;
  }

  EventId ScheduleAfter(double delay, std::function<void()> fn) {
    if (delay < 0.0) delay = 0.0;
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    auto it = pending_ids_.find(id);
    if (it == pending_ids_.end()) return false;
    pending_ids_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  bool Step() {
    SkimCancelled();
    if (queue_.empty()) return false;
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    pending_ids_.erase(event.id);
    now_ = event.when;
    ++events_processed_;
    event.fn();
    return true;
  }

  size_t RunToCompletion() {
    size_t processed = 0;
    while (Step()) ++processed;
    return processed;
  }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    double when;
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void SkimCancelled() {
    while (!queue_.empty()) {
      auto it = cancelled_.find(queue_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      queue_.pop();
    }
  }

  double now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
};

/// Fires `total_events` events through `sim`: `outstanding` concurrent
/// self-rescheduling timers (the client/controller pattern) where every
/// fourth firing also schedules a far-future event and cancels an older
/// one (the timeout pattern that stresses Cancel). Callbacks capture one
/// pointer, like real components capturing `this`, so both simulators
/// get their small-buffer path and the comparison isolates the queue.
template <typename Sim>
struct EventWorkload {
  Sim* sim;
  uint64_t total_events;
  int outstanding;
  qsched::Rng rng{12345};
  uint64_t fired = 0;
  std::vector<uint64_t> victims;

  void Arm() {
    sim->ScheduleAfter(rng.Exponential(1.0), [this] {
      ++fired;
      if (fired + static_cast<uint64_t>(outstanding) <= total_events) {
        Arm();
      }
      if (fired % 4 == 0) {
        victims.push_back(
            sim->ScheduleAfter(1e6 + rng.NextDouble(), [] {}));
        if (victims.size() > 32) {
          sim->Cancel(victims.front());
          victims.erase(victims.begin());
        }
      }
    });
  }

  uint64_t Run() {
    victims.reserve(64);
    for (int lane = 0; lane < outstanding; ++lane) Arm();
    sim->RunToCompletion();
    return fired;
  }
};

struct EventQueueNumbers {
  uint64_t events = 0;
  double baseline_eps = 0.0;
  double fast_eps = 0.0;
};

EventQueueNumbers BenchEventQueue(uint64_t total_events, int outstanding) {
  EventQueueNumbers numbers;
  {
    BaselineSimulator sim;
    EventWorkload<BaselineSimulator> workload{&sim, total_events,
                                              outstanding};
    auto start = Clock::now();
    numbers.events = workload.Run();
    double wall = Seconds(start);
    numbers.baseline_eps =
        static_cast<double>(sim.events_processed()) / wall;
  }
  {
    qsched::sim::Simulator sim;
    EventWorkload<qsched::sim::Simulator> workload{&sim, total_events,
                                                   outstanding};
    auto start = Clock::now();
    workload.Run();
    double wall = Seconds(start);
    numbers.fast_eps = static_cast<double>(sim.events_processed()) / wall;
  }
  return numbers;
}

qsched::harness::ExperimentConfig Fig6Config(double period_seconds) {
  qsched::harness::ExperimentConfig config;
  config.period_seconds = period_seconds;
  return config;
}

struct RtGatewayNumbers {
  double qps_target = 0.0;
  double feed_seconds = 0.0;
  uint64_t offered = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  double sustained_qps = 0.0;
  double completions_per_sec = 0.0;
  double admission_p50_seconds = 0.0;
  double admission_p99_seconds = 0.0;
  // http_obs section only: scrapes completed and bytes transferred by
  // the attached 1 Hz /metrics scraper.
  uint64_t scrapes = 0;
  uint64_t scrape_bytes = 0;
  // replay_capture section only: the recorder's own accounting.
  uint64_t captured = 0;
  uint64_t dropped = 0;
};

/// One blocking GET against the embedded HTTP server; returns bytes
/// received (0 on failure). The scraper thread below is the same kind
/// of client a Prometheus agent would be.
size_t HttpScrapeOnce(uint16_t port, const char* path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return 0;
  }
  char request[128];
  int len = std::snprintf(request, sizeof(request),
                          "GET %s HTTP/1.0\r\n\r\n", path);
  if (write(fd, request, static_cast<size_t>(len)) != len) {
    close(fd);
    return 0;
  }
  size_t total = 0;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    total += static_cast<size_t>(n);
  }
  close(fd);
  return total;
}

/// Pushes a mixed OLAP + OLTP load through the live gateway on the wall
/// clock and measures what the submission path sustains. Admission
/// latency (enqueue to worker pickup) comes from the gateway's own
/// telemetry histogram; completions/sec include the post-feed drain so
/// the number reflects end-to-end service, not just intake.
/// When `attach_scraper` is set, the embedded obs::HttpServer runs for
/// the whole benchmark with a 1 Hz GET /metrics scraper thread attached
/// (the http_obs overhead measurement); otherwise no HTTP server exists
/// at all (the detached baseline).
/// When `capture_trace_path` is non-empty, a replay::TraceRecorder is
/// hooked at the gateway's offer point for the whole run (the
/// replay_capture overhead measurement).
RtGatewayNumbers BenchRtGateway(double qps, double duration_seconds,
                                bool attach_scraper = false,
                                const std::string& capture_trace_path =
                                    std::string()) {
  RtGatewayNumbers numbers;
  numbers.qps_target = qps;

  qsched::obs::Telemetry telemetry;
  qsched::rt::RuntimeOptions options;
  options.time_scale = 60.0;
  options.horizon_model_seconds =
      std::max(3600.0, 4.0 * duration_seconds * options.time_scale);
  options.gateway.queue_capacity = 8192;
  options.gateway.workers = 4;
  options.scheduler.control_interval_seconds = 15.0;
  options.telemetry = &telemetry;

  qsched::sched::ServiceClassSet classes =
      qsched::sched::MakePaperClasses();
  qsched::rt::Runtime runtime(classes, options);

  qsched::workload::TpchWorkloadParams tpch;
  tpch.scale_factor = 0.1;
  qsched::workload::TpchWorkload olap1(tpch, /*seed=*/7);
  qsched::workload::TpchWorkload olap2(tpch, /*seed=*/8);
  qsched::workload::TpccWorkloadParams tpcc;
  qsched::workload::TpccWorkload oltp(tpcc, /*seed=*/9);

  qsched::rt::LoadGenOptions load;
  load.pattern = qsched::rt::ArrivalPattern::kConstant;
  load.qps = qps;
  load.duration_wall_seconds = duration_seconds;
  load.seed = 1234;

  std::unique_ptr<qsched::obs::HttpServer> http;
  std::thread scraper;
  std::atomic<bool> scraping{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scrape_bytes{0};
  if (attach_scraper) {
    http = std::make_unique<qsched::obs::HttpServer>(
        qsched::obs::HttpServerOptions{});  // ephemeral port
    qsched::obs::InstallRegistryHandlers(http.get(),
                                         &telemetry.registry);
    qsched::Status started = http->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "http_obs: server start failed: %s\n",
                   started.ToString().c_str());
      return numbers;
    }
    scraping.store(true);
    scraper = std::thread([&, port = http->port()] {
      while (scraping.load()) {
        size_t bytes = HttpScrapeOnce(port, "/metrics");
        if (bytes > 0) {
          scrapes.fetch_add(1);
          scrape_bytes.fetch_add(bytes);
        }
        for (int i = 0; i < 10 && scraping.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
  }

  std::unique_ptr<qsched::replay::TraceRecorder> recorder;
  if (!capture_trace_path.empty()) {
    qsched::replay::RecorderOptions recorder_options;
    recorder_options.writer.path = capture_trace_path;
    recorder_options.writer.header.time_scale = options.time_scale;
    recorder = std::make_unique<qsched::replay::TraceRecorder>(
        recorder_options, &telemetry);
    qsched::Status recording = recorder->Start();
    if (!recording.ok()) {
      std::fprintf(stderr, "replay_capture: recorder start failed: %s\n",
                   recording.ToString().c_str());
      return numbers;
    }
    runtime.gateway().set_on_offer(
        [rec = recorder.get()](const qsched::workload::Query& query) {
          rec->Record(query);
        });
  }

  auto start = Clock::now();
  runtime.Start();
  qsched::rt::LoadGenerator loadgen(
      &runtime.gateway(),
      {{&olap1, 1, 3.0}, {&olap2, 2, 3.0}, {&oltp, 3, 94.0}}, load,
      &telemetry);
  loadgen.Start();
  loadgen.Join();
  numbers.feed_seconds = Seconds(start);
  qsched::rt::Runtime::Stats stats =
      runtime.Shutdown(/*drain_timeout_wall_seconds=*/300.0);
  double total_seconds = Seconds(start);

  if (recorder != nullptr) {
    (void)recorder->Stop();
    numbers.captured = recorder->captured();
    numbers.dropped = recorder->dropped();
  }

  if (attach_scraper) {
    scraping.store(false);
    scraper.join();
    http->Stop();
    numbers.scrapes = scrapes.load();
    numbers.scrape_bytes = scrape_bytes.load();
  }

  numbers.offered = loadgen.offered();
  numbers.shed = loadgen.shed();
  numbers.completed = stats.completed;
  numbers.sustained_qps =
      numbers.feed_seconds > 0.0
          ? static_cast<double>(numbers.offered) / numbers.feed_seconds
          : 0.0;
  numbers.completions_per_sec =
      total_seconds > 0.0
          ? static_cast<double>(stats.completed) / total_seconds
          : 0.0;
  const qsched::obs::Histogram* admission =
      telemetry.registry.GetHistogram("qsched_rt_admission_latency_seconds");
  numbers.admission_p50_seconds = admission->Quantile(0.5);
  numbers.admission_p99_seconds = admission->Quantile(0.99);
  return numbers;
}

struct NetLoopbackNumbers {
  double qps_target = 0.0;
  int connections = 0;
  int reactors = 0;
  bool pipeline = false;
  double time_scale = 60.0;
  double tpch_scale_factor = 0.1;
  double feed_seconds = 0.0;
  double drain_seconds = 0.0;
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t lost = 0;
  double sustained_qps = 0.0;
  double rtt_p50_seconds = 0.0;
  double rtt_p99_seconds = 0.0;
};

/// The rt gateway benchmark again, but through the TCP front-end: an
/// in-process Server on an ephemeral loopback port, driven by the
/// multi-connection RemoteLoadGenerator. Round-trip latency is the
/// full on-wire path (client submit -> reactor -> gateway -> worker ->
/// completion mailbox -> reactor -> COMPLETED frame back at the
/// client), from the `qsched_net_rtt_seconds` histogram.
NetLoopbackNumbers BenchNetLoopback(double qps, double duration_seconds,
                                    int connections, bool pipeline,
                                    double time_scale,
                                    double control_interval_seconds,
                                    double tpch_scale_factor) {
  NetLoopbackNumbers numbers;
  numbers.qps_target = qps;
  numbers.connections = connections;
  numbers.pipeline = pipeline;
  numbers.time_scale = time_scale;
  numbers.tpch_scale_factor = tpch_scale_factor;

  qsched::obs::Telemetry telemetry;
  qsched::rt::RuntimeOptions options;
  options.time_scale = time_scale;
  options.horizon_model_seconds =
      std::max(3600.0, 4.0 * duration_seconds * options.time_scale);
  options.gateway.queue_capacity = 8192;
  options.gateway.workers = 4;
  // At high time_scale a compressed control interval makes the planner
  // solve under the core lock every few wall-ms, which would dominate
  // the RTT tail; the latency section keeps the paper's 60 s interval.
  options.scheduler.control_interval_seconds = control_interval_seconds;
  options.telemetry = &telemetry;

  qsched::sched::ServiceClassSet classes =
      qsched::sched::MakePaperClasses();
  qsched::rt::Runtime runtime(classes, options);
  runtime.Start();

  qsched::net::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  qsched::net::Server server(&runtime.gateway(), server_options,
                             &telemetry);
  qsched::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "net_loopback: server start failed: %s\n",
                 started.ToString().c_str());
    runtime.Shutdown();
    return numbers;
  }

  numbers.reactors = server.reactors();

  qsched::net::RemoteLoadOptions load;
  load.connections = connections;
  load.qps = qps;
  load.duration_wall_seconds = duration_seconds;
  load.seed = 1234;
  load.tpch_scale_factor = tpch_scale_factor;
  load.pipeline = pipeline;

  auto start = Clock::now();
  qsched::net::RemoteLoadGenerator loadgen("127.0.0.1", server.port(),
                                           load, &telemetry);
  qsched::Status run = loadgen.Run();
  const double wall = Seconds(start);
  if (!run.ok()) {
    std::fprintf(stderr, "net_loopback: load run failed: %s\n",
                 run.ToString().c_str());
  }
  server.Stop();
  runtime.Shutdown(/*drain_timeout_wall_seconds=*/300.0);

  numbers.feed_seconds =
      loadgen.feed_seconds() > 0.0 ? loadgen.feed_seconds() : wall;
  numbers.drain_seconds = loadgen.drain_seconds();
  numbers.offered = loadgen.offered();
  numbers.accepted = loadgen.accepted();
  numbers.rejected = loadgen.rejected_queue_full() +
                     loadgen.rejected_shutting_down();
  numbers.completed = loadgen.completed();
  numbers.lost = loadgen.lost_completions() +
                 loadgen.unmatched_completions();
  numbers.sustained_qps =
      numbers.feed_seconds > 0.0
          ? static_cast<double>(numbers.offered) / numbers.feed_seconds
          : 0.0;
  const qsched::obs::Histogram* rtt =
      telemetry.registry.GetHistogram("qsched_net_rtt_seconds");
  numbers.rtt_p50_seconds = rtt->Quantile(0.5);
  numbers.rtt_p99_seconds = rtt->Quantile(0.99);
  if (std::getenv("QSCHED_BENCH_STAGES") != nullptr) {
    for (int cls = 1; cls <= 3; ++cls) {
      for (const char* stage :
           {"gateway_queue", "dispatch", "execute", "flush"}) {
        char labels[64];
        std::snprintf(labels, sizeof(labels),
                      "class=\"%d\",stage=\"%s\"", cls, stage);
        const qsched::obs::Histogram* h =
            telemetry.registry.GetHistogram("qsched_stage_seconds", labels);
        if (h->count() > 0) {
          std::printf("  class %d stage %-14s p50 %8.0f us p99 %8.0f us\n",
                      cls, stage, h->Quantile(0.5) * 1e6,
                      h->Quantile(0.99) * 1e6);
        }
      }
    }
  }
  return numbers;
}

struct ClusterLoopbackNumbers {
  double qps_target = 0.0;
  int backends = 0;
  int connections = 0;
  double feed_seconds = 0.0;
  double drain_seconds = 0.0;
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t lost = 0;
  uint64_t failovers = 0;
  double sustained_qps = 0.0;
  double rtt_p50_seconds = 0.0;
  double rtt_p99_seconds = 0.0;
  bool conserved = false;
};

/// The net_loopback stack with the cluster router in the middle:
/// N independent backend runtimes, each behind its own net::Server, a
/// cluster::Router fanning over them, and a front net::Server speaking
/// the wire protocol to the load generator. Run at the same
/// non-saturating target as the paired direct pass, so the reported
/// sustained QPS and rtt_p99 isolate the router hop, not a different
/// operating point.
ClusterLoopbackNumbers BenchClusterRouted(double qps,
                                          double duration_seconds,
                                          int connections, int backends) {
  ClusterLoopbackNumbers numbers;
  numbers.qps_target = qps;
  numbers.backends = backends;
  numbers.connections = connections;

  struct BackendStack {
    std::unique_ptr<qsched::obs::Telemetry> telemetry;
    std::unique_ptr<qsched::rt::Runtime> runtime;
    std::unique_ptr<qsched::net::Server> server;
  };
  std::vector<BackendStack> stacks;
  std::vector<qsched::cluster::BackendAddress> addresses;
  for (int i = 0; i < backends; ++i) {
    BackendStack stack;
    stack.telemetry = std::make_unique<qsched::obs::Telemetry>();
    qsched::rt::RuntimeOptions options;
    options.time_scale = 60.0;
    options.horizon_model_seconds =
        std::max(3600.0, 4.0 * duration_seconds * options.time_scale);
    options.gateway.queue_capacity = 8192;
    options.gateway.workers = 4;
    options.scheduler.control_interval_seconds = 15.0;
    options.seed = 1000 + static_cast<uint64_t>(i);
    options.telemetry = stack.telemetry.get();
    stack.runtime = std::make_unique<qsched::rt::Runtime>(
        qsched::sched::MakePaperClasses(), options);
    stack.runtime->Start();
    qsched::net::ServerOptions server_options;
    server_options.port = 0;
    server_options.reactors = 1;
    stack.server = std::make_unique<qsched::net::Server>(
        &stack.runtime->gateway(), server_options, stack.telemetry.get());
    qsched::Status started = stack.server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "cluster_loopback: backend start failed: %s\n",
                   started.ToString().c_str());
      for (BackendStack& up : stacks) {
        up.server->Stop();
        up.runtime->Shutdown();
      }
      stack.runtime->Shutdown();
      return numbers;
    }
    addresses.push_back({"127.0.0.1", stack.server->port()});
    stacks.push_back(std::move(stack));
  }

  qsched::obs::Telemetry router_telemetry;
  qsched::cluster::RouterOptions router_options;
  qsched::cluster::Router router(addresses, router_options,
                                 &router_telemetry);
  router.Start();
  router.pool().WaitUsable(static_cast<size_t>(backends), 5.0);

  qsched::net::ServerOptions front_options;
  front_options.port = 0;
  qsched::net::Server front(&router, front_options, &router_telemetry);
  qsched::Status front_started = front.Start();
  if (!front_started.ok()) {
    std::fprintf(stderr, "cluster_loopback: front start failed: %s\n",
                 front_started.ToString().c_str());
    router.Stop();
    for (BackendStack& stack : stacks) {
      stack.server->Stop();
      stack.runtime->Shutdown();
    }
    return numbers;
  }

  qsched::net::RemoteLoadOptions load;
  load.connections = connections;
  load.qps = qps;
  load.duration_wall_seconds = duration_seconds;
  load.seed = 1234;
  load.tpch_scale_factor = 0.1;
  load.pipeline = true;

  qsched::obs::Telemetry load_telemetry;
  qsched::net::RemoteLoadGenerator loadgen("127.0.0.1", front.port(), load,
                                           &load_telemetry);
  qsched::Status run = loadgen.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "cluster_loopback: load run failed: %s\n",
                 run.ToString().c_str());
  }
  front.Stop();
  router.Stop();
  for (BackendStack& stack : stacks) {
    stack.server->Stop();
    stack.runtime->Shutdown(/*drain_timeout_wall_seconds=*/300.0);
  }

  numbers.feed_seconds = loadgen.feed_seconds();
  numbers.drain_seconds = loadgen.drain_seconds();
  numbers.offered = loadgen.offered();
  numbers.accepted = loadgen.accepted();
  numbers.rejected = loadgen.rejected_queue_full() +
                     loadgen.rejected_shutting_down() +
                     loadgen.rejected_backend_unavailable();
  numbers.completed = loadgen.completed();
  numbers.lost =
      loadgen.lost_completions() + loadgen.unmatched_completions();
  numbers.failovers = router.Accounting().failovers;
  numbers.sustained_qps =
      numbers.feed_seconds > 0.0
          ? static_cast<double>(numbers.offered) / numbers.feed_seconds
          : 0.0;
  const qsched::obs::Histogram* rtt =
      load_telemetry.registry.GetHistogram("qsched_net_rtt_seconds");
  numbers.rtt_p50_seconds = rtt->Quantile(0.5);
  numbers.rtt_p99_seconds = rtt->Quantile(0.99);
  numbers.conserved =
      router.ConservationHolds() &&
      numbers.offered == numbers.accepted + numbers.rejected &&
      numbers.completed == numbers.accepted && numbers.lost == 0;
  return numbers;
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.Has("help")) {
    std::printf(
        "flags: --events=N --outstanding=K --fig6-period-seconds=S\n"
        "       --replications=R --jobs=J --rep-period-seconds=S\n"
        "       --rt-qps=Q --rt-duration=S (real-time gateway section)\n"
        "       --net-qps=Q --net-duration=S --net-connections=C\n"
        "       (TCP loopback throughput section; pipelined)\n"
        "       --net-latency-qps=Q --net-latency-duration=S\n"
        "       --net-latency-time-scale=X\n"
        "       (TCP loopback latency section; blocking submission)\n"
        "       --http-obs-qps=Q --http-obs-duration=S\n"
        "       (HTTP observability overhead section)\n"
        "       --replay-capture-qps=Q --replay-capture-duration=S\n"
        "       (trace capture overhead section: recorder on vs off)\n"
        "       --cluster-qps=Q --cluster-duration=S "
        "--cluster-backends=N\n"
        "       (cluster router section: direct vs routed)\n"
        "       --out=PATH (JSON report; default stdout only)\n");
    return 0;
  }
  uint64_t total_events =
      static_cast<uint64_t>(flags.GetInt("events", 2000000));
  int outstanding = static_cast<int>(flags.GetInt("outstanding", 512));
  double fig6_period = flags.GetDouble("fig6-period-seconds", 600.0);
  int replications = static_cast<int>(flags.GetInt("replications", 8));
  int jobs = qsched::harness::ResolveJobs(
      static_cast<int>(flags.GetInt("jobs", 0)));
  double rep_period = flags.GetDouble("rep-period-seconds", 120.0);
  double rt_qps = flags.GetDouble("rt-qps", 1500.0);
  double rt_duration = flags.GetDouble("rt-duration", 2.0);
  double net_qps = flags.GetDouble("net-qps", 25000.0);
  double net_duration = flags.GetDouble("net-duration", 2.0);
  int net_connections =
      static_cast<int>(flags.GetInt("net-connections", 4));
  double net_latency_qps = flags.GetDouble("net-latency-qps", 1500.0);
  double net_latency_duration =
      flags.GetDouble("net-latency-duration", 2.0);
  double net_latency_time_scale =
      flags.GetDouble("net-latency-time-scale", 6000.0);
  double http_obs_qps = flags.GetDouble("http-obs-qps", 1500.0);
  double http_obs_duration = flags.GetDouble("http-obs-duration", 2.0);
  double replay_capture_qps = flags.GetDouble("replay-capture-qps", 1500.0);
  double replay_capture_duration =
      flags.GetDouble("replay-capture-duration", 2.0);
  double cluster_qps = flags.GetDouble("cluster-qps", 1500.0);
  double cluster_duration = flags.GetDouble("cluster-duration", 2.0);
  int cluster_backends =
      static_cast<int>(flags.GetInt("cluster-backends", 2));
  std::string out_path = flags.GetString("out", "");

  std::printf("== event queue: %llu events, %d outstanding ==\n",
              static_cast<unsigned long long>(total_events), outstanding);
  EventQueueNumbers eq = BenchEventQueue(total_events, outstanding);
  double speedup = eq.baseline_eps > 0.0 ? eq.fast_eps / eq.baseline_eps
                                         : 0.0;
  std::printf("baseline (priority_queue): %12.0f events/sec\n",
              eq.baseline_eps);
  std::printf("fast (4-ary heap + SBO):   %12.0f events/sec\n",
              eq.fast_eps);
  std::printf("speedup: %.2fx\n", speedup);

  std::printf("== Fig. 6 run (period %.0f s) ==\n", fig6_period);
  qsched::harness::ExperimentResult fig6;
  {
    auto config = Fig6Config(fig6_period);
    fig6 = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
  }
  double fig6_eps = fig6.wall_seconds > 0.0
                        ? static_cast<double>(fig6.sim_events_processed) /
                              fig6.wall_seconds
                        : 0.0;
  std::printf("wall %.3f s, %llu sim events, %.0f events/sec\n",
              fig6.wall_seconds,
              static_cast<unsigned long long>(fig6.sim_events_processed),
              fig6_eps);

  std::printf("== replication: %d runs, serial vs --jobs %d ==\n",
              replications, jobs);
  auto rep_config = Fig6Config(rep_period);
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  {
    qsched::harness::ReplicationOptions options;
    options.jobs = 1;
    auto start = Clock::now();
    qsched::harness::RunReplicated(
        rep_config, qsched::harness::ControllerKind::kQueryScheduler,
        replications, options);
    serial_seconds = Seconds(start);
  }
  {
    qsched::harness::ReplicationOptions options;
    options.jobs = jobs;
    auto start = Clock::now();
    qsched::harness::RunReplicated(
        rep_config, qsched::harness::ControllerKind::kQueryScheduler,
        replications, options);
    parallel_seconds = Seconds(start);
  }
  double rep_speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  // Worker threads the parallel pass actually ran (ParallelFor runs
  // inline for jobs <= 1 and never spawns more workers than tasks).
  int threads_used = std::max(1, std::min(jobs, replications));
  std::printf("serial %.3f s, parallel %.3f s, speedup %.2fx "
              "(%d threads)\n",
              serial_seconds, parallel_seconds, rep_speedup,
              threads_used);
  if (threads_used > 1 && rep_speedup < 1.2) {
    std::fprintf(stderr,
                 "WARNING: replication speedup %.2fx < 1.2x with %d "
                 "threads (hardware_concurrency=%u) — the parallel "
                 "numbers are not meaningful on this host\n",
                 rep_speedup, threads_used,
                 std::thread::hardware_concurrency());
  }

  std::printf("== rt gateway: %.0f qps for %.1f s wall ==\n", rt_qps,
              rt_duration);
  RtGatewayNumbers rt = BenchRtGateway(rt_qps, rt_duration);
  std::printf("sustained %.0f submissions/sec (offered %llu, shed %llu), "
              "%.0f completions/sec, admission p50 %.1f us p99 %.1f us\n",
              rt.sustained_qps,
              static_cast<unsigned long long>(rt.offered),
              static_cast<unsigned long long>(rt.shed),
              rt.completions_per_sec, rt.admission_p50_seconds * 1e6,
              rt.admission_p99_seconds * 1e6);

  std::printf("== net loopback (pipelined): %.0f qps on %d connections "
              "for %.1f s ==\n",
              net_qps, net_connections, net_duration);
  NetLoopbackNumbers net =
      BenchNetLoopback(net_qps, net_duration, net_connections,
                       /*pipeline=*/true, /*time_scale=*/60.0,
                       /*control_interval_seconds=*/15.0,
                       /*tpch_scale_factor=*/0.1);
  std::printf("sustained %.0f submissions/sec over TCP on %d reactors "
              "(offered %llu, accepted %llu, rejected %llu, completed "
              "%llu, lost %llu), feed %.2f s + drain %.2f s, "
              "rtt p50 %.0f us p99 %.0f us\n",
              net.sustained_qps, net.reactors,
              static_cast<unsigned long long>(net.offered),
              static_cast<unsigned long long>(net.accepted),
              static_cast<unsigned long long>(net.rejected),
              static_cast<unsigned long long>(net.completed),
              static_cast<unsigned long long>(net.lost),
              net.feed_seconds, net.drain_seconds,
              net.rtt_p50_seconds * 1e6, net.rtt_p99_seconds * 1e6);

  std::printf("== net latency (blocking): %.0f qps on %d connections for "
              "%.1f s at time_scale %.0f ==\n",
              net_latency_qps, net_connections, net_latency_duration,
              net_latency_time_scale);
  NetLoopbackNumbers net_lat =
      // The latency section measures the serving path (reactor ->
      // gateway -> worker -> completion flush), so it compresses model
      // time and uses a light OLAP profile: with TPC-H at SF 0.1 the
      // simulated executions are ~30 model-seconds, which floors the
      // RTT tail at any usable time_scale and measures the modeled
      // DBMS, not the stack under test.
      BenchNetLoopback(net_latency_qps, net_latency_duration,
                       net_connections, /*pipeline=*/false,
                       net_latency_time_scale,
                       /*control_interval_seconds=*/60.0,
                       /*tpch_scale_factor=*/0.01);
  std::printf("sustained %.0f submissions/sec (offered %llu, accepted "
              "%llu, rejected %llu, completed %llu, lost %llu), "
              "rtt p50 %.0f us p99 %.0f us\n",
              net_lat.sustained_qps,
              static_cast<unsigned long long>(net_lat.offered),
              static_cast<unsigned long long>(net_lat.accepted),
              static_cast<unsigned long long>(net_lat.rejected),
              static_cast<unsigned long long>(net_lat.completed),
              static_cast<unsigned long long>(net_lat.lost),
              net_lat.rtt_p50_seconds * 1e6,
              net_lat.rtt_p99_seconds * 1e6);

  std::printf("== cluster loopback: %.0f qps on %d connections for "
              "%.1f s, direct vs routed over %d backends ==\n",
              cluster_qps, net_connections, cluster_duration,
              cluster_backends);
  // Same non-saturating operating point for both passes, so the delta
  // is the router hop itself, not a different load regime.
  NetLoopbackNumbers direct =
      BenchNetLoopback(cluster_qps, cluster_duration, net_connections,
                       /*pipeline=*/true, /*time_scale=*/60.0,
                       /*control_interval_seconds=*/15.0,
                       /*tpch_scale_factor=*/0.1);
  ClusterLoopbackNumbers routed = BenchClusterRouted(
      cluster_qps, cluster_duration, net_connections, cluster_backends);
  const double added_rtt_p99 =
      routed.rtt_p99_seconds - direct.rtt_p99_seconds;
  std::printf("direct %.0f qps rtt p99 %.0f us; routed %.0f qps rtt p99 "
              "%.0f us (added p99 %.0f us), offered %llu completed %llu "
              "lost %llu failovers %llu%s\n",
              direct.sustained_qps, direct.rtt_p99_seconds * 1e6,
              routed.sustained_qps, routed.rtt_p99_seconds * 1e6,
              added_rtt_p99 * 1e6,
              static_cast<unsigned long long>(routed.offered),
              static_cast<unsigned long long>(routed.completed),
              static_cast<unsigned long long>(routed.lost),
              static_cast<unsigned long long>(routed.failovers),
              routed.conserved ? "" : "  [CONSERVATION VIOLATED]");
  if (direct.sustained_qps > 0.0 &&
      routed.sustained_qps < 0.8 * direct.sustained_qps) {
    std::fprintf(stderr,
                 "WARNING: routed sustained %.0f qps < 0.8x direct "
                 "%.0f qps — the router hop is shedding throughput\n",
                 routed.sustained_qps, direct.sustained_qps);
  }

  std::printf("== http obs: %.0f qps for %.1f s, 1 Hz scraper attached "
              "vs detached ==\n",
              http_obs_qps, http_obs_duration);
  RtGatewayNumbers detached =
      BenchRtGateway(http_obs_qps, http_obs_duration,
                     /*attach_scraper=*/false);
  RtGatewayNumbers attached =
      BenchRtGateway(http_obs_qps, http_obs_duration,
                     /*attach_scraper=*/true);
  double obs_overhead_pct =
      detached.completions_per_sec > 0.0
          ? (1.0 - attached.completions_per_sec /
                       detached.completions_per_sec) *
                100.0
          : 0.0;
  std::printf("detached %.0f completions/sec, attached %.0f "
              "completions/sec (%llu scrapes, %llu bytes), overhead "
              "%.2f%%\n",
              detached.completions_per_sec, attached.completions_per_sec,
              static_cast<unsigned long long>(attached.scrapes),
              static_cast<unsigned long long>(attached.scrape_bytes),
              obs_overhead_pct);
  if (obs_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "WARNING: http observability overhead %.2f%% > 2%% "
                 "(short runs are noisy; rerun with a longer "
                 "--http-obs-duration before concluding a regression)\n",
                 obs_overhead_pct);
  }

  std::printf("== replay capture: %.0f qps for %.1f s, recorder on vs "
              "off ==\n",
              replay_capture_qps, replay_capture_duration);
  RtGatewayNumbers capture_off =
      BenchRtGateway(replay_capture_qps, replay_capture_duration);
  char trace_path[128];
  std::snprintf(trace_path, sizeof(trace_path),
                "/tmp/qsched_bench_capture_%d.bin",
                static_cast<int>(getpid()));
  RtGatewayNumbers capture_on =
      BenchRtGateway(replay_capture_qps, replay_capture_duration,
                     /*attach_scraper=*/false, trace_path);
  std::remove(trace_path);
  double capture_overhead_pct =
      capture_off.completions_per_sec > 0.0
          ? (1.0 - capture_on.completions_per_sec /
                       capture_off.completions_per_sec) *
                100.0
          : 0.0;
  bool capture_conserved =
      capture_on.captured + capture_on.dropped == capture_on.offered;
  std::printf("off %.0f completions/sec, on %.0f completions/sec "
              "(captured %llu, dropped %llu), overhead %.2f%%%s\n",
              capture_off.completions_per_sec,
              capture_on.completions_per_sec,
              static_cast<unsigned long long>(capture_on.captured),
              static_cast<unsigned long long>(capture_on.dropped),
              capture_overhead_pct,
              capture_conserved ? "" : "  [CONSERVATION VIOLATED]");
  if (capture_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "WARNING: capture overhead %.2f%% > 2%% (short runs "
                 "are noisy; rerun with a longer "
                 "--replay-capture-duration before concluding a "
                 "regression)\n",
                 capture_overhead_pct);
  }

  std::string json;
  {
    char buffer[20480];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\n"
        "  \"bench\": \"qsched_perf\",\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"threads_used\": %d,\n"
        "  \"event_queue\": {\n"
        "    \"events\": %llu,\n"
        "    \"outstanding\": %d,\n"
        "    \"baseline_events_per_sec\": %.0f,\n"
        "    \"fast_events_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"fig6\": {\n"
        "    \"period_seconds\": %.0f,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"sim_events\": %llu,\n"
        "    \"events_per_sec\": %.0f\n"
        "  },\n"
        "  \"replication\": {\n"
        "    \"replications\": %d,\n"
        "    \"jobs\": %d,\n"
        "    \"threads_used\": %d,\n"
        "    \"period_seconds\": %.0f,\n"
        "    \"serial_seconds\": %.3f,\n"
        "    \"parallel_seconds\": %.3f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"rt_gateway\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"offered\": %llu,\n"
        "    \"shed\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"sustained_qps\": %.0f,\n"
        "    \"completions_per_sec\": %.0f,\n"
        "    \"admission_p50_us\": %.1f,\n"
        "    \"admission_p99_us\": %.1f\n"
        "  },\n"
        "  \"net_loopback\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"connections\": %d,\n"
        "    \"reactors\": %d,\n"
        "    \"pipeline\": true,\n"
        "    \"time_scale\": %.0f,\n"
        "    \"tpch_scale_factor\": %.3f,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"feed_seconds\": %.3f,\n"
        "    \"drain_seconds\": %.3f,\n"
        "    \"offered\": %llu,\n"
        "    \"accepted\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"lost\": %llu,\n"
        "    \"sustained_qps\": %.0f,\n"
        "    \"rtt_p50_us\": %.1f,\n"
        "    \"rtt_p99_us\": %.1f\n"
        "  },\n"
        "  \"net_latency\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"connections\": %d,\n"
        "    \"reactors\": %d,\n"
        "    \"pipeline\": false,\n"
        "    \"time_scale\": %.0f,\n"
        "    \"tpch_scale_factor\": %.3f,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"offered\": %llu,\n"
        "    \"accepted\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"lost\": %llu,\n"
        "    \"sustained_qps\": %.0f,\n"
        "    \"rtt_p50_us\": %.1f,\n"
        "    \"rtt_p99_us\": %.1f\n"
        "  },\n"
        "  \"cluster_loopback\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"backends\": %d,\n"
        "    \"connections\": %d,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"direct_sustained_qps\": %.0f,\n"
        "    \"direct_rtt_p99_us\": %.1f,\n"
        "    \"sustained_qps\": %.0f,\n"
        "    \"rtt_p99_us\": %.1f,\n"
        "    \"added_rtt_p99_us\": %.1f,\n"
        "    \"offered\": %llu,\n"
        "    \"accepted\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"lost\": %llu,\n"
        "    \"failovers\": %llu,\n"
        "    \"conserved\": %s\n"
        "  },\n"
        "  \"http_obs\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"detached_completions_per_sec\": %.0f,\n"
        "    \"attached_completions_per_sec\": %.0f,\n"
        "    \"scrapes\": %llu,\n"
        "    \"scrape_bytes\": %llu,\n"
        "    \"overhead_pct\": %.2f\n"
        "  },\n"
        "  \"replay_capture\": {\n"
        "    \"qps_target\": %.0f,\n"
        "    \"duration_seconds\": %.2f,\n"
        "    \"capture_off_qps\": %.0f,\n"
        "    \"capture_on_qps\": %.0f,\n"
        "    \"capture_off_completions_per_sec\": %.0f,\n"
        "    \"capture_on_completions_per_sec\": %.0f,\n"
        "    \"captured\": %llu,\n"
        "    \"dropped\": %llu,\n"
        "    \"conserved\": %s,\n"
        "    \"overhead_pct\": %.2f\n"
        "  }\n"
        "}\n",
        std::thread::hardware_concurrency(), threads_used,
        static_cast<unsigned long long>(eq.events), outstanding,
        eq.baseline_eps, eq.fast_eps, speedup, fig6_period,
        fig6.wall_seconds,
        static_cast<unsigned long long>(fig6.sim_events_processed),
        fig6_eps, replications, jobs, threads_used, rep_period,
        serial_seconds, parallel_seconds, rep_speedup, rt.qps_target,
        rt_duration, static_cast<unsigned long long>(rt.offered),
        static_cast<unsigned long long>(rt.shed),
        static_cast<unsigned long long>(rt.completed), rt.sustained_qps,
        rt.completions_per_sec, rt.admission_p50_seconds * 1e6,
        rt.admission_p99_seconds * 1e6, net.qps_target, net.connections,
        net.reactors, net.time_scale, net.tpch_scale_factor,
        net_duration, net.feed_seconds,
        net.drain_seconds, static_cast<unsigned long long>(net.offered),
        static_cast<unsigned long long>(net.accepted),
        static_cast<unsigned long long>(net.rejected),
        static_cast<unsigned long long>(net.completed),
        static_cast<unsigned long long>(net.lost), net.sustained_qps,
        net.rtt_p50_seconds * 1e6, net.rtt_p99_seconds * 1e6,
        net_lat.qps_target, net_lat.connections, net_lat.reactors,
        net_lat.time_scale, net_lat.tpch_scale_factor,
        net_latency_duration,
        static_cast<unsigned long long>(net_lat.offered),
        static_cast<unsigned long long>(net_lat.accepted),
        static_cast<unsigned long long>(net_lat.rejected),
        static_cast<unsigned long long>(net_lat.completed),
        static_cast<unsigned long long>(net_lat.lost),
        net_lat.sustained_qps, net_lat.rtt_p50_seconds * 1e6,
        net_lat.rtt_p99_seconds * 1e6,
        routed.qps_target, routed.backends, routed.connections,
        cluster_duration, direct.sustained_qps,
        direct.rtt_p99_seconds * 1e6, routed.sustained_qps,
        routed.rtt_p99_seconds * 1e6, added_rtt_p99 * 1e6,
        static_cast<unsigned long long>(routed.offered),
        static_cast<unsigned long long>(routed.accepted),
        static_cast<unsigned long long>(routed.rejected),
        static_cast<unsigned long long>(routed.completed),
        static_cast<unsigned long long>(routed.lost),
        static_cast<unsigned long long>(routed.failovers),
        routed.conserved ? "true" : "false",
        http_obs_qps, http_obs_duration, detached.completions_per_sec,
        attached.completions_per_sec,
        static_cast<unsigned long long>(attached.scrapes),
        static_cast<unsigned long long>(attached.scrape_bytes),
        obs_overhead_pct, replay_capture_qps, replay_capture_duration,
        capture_off.sustained_qps, capture_on.sustained_qps,
        capture_off.completions_per_sec, capture_on.completions_per_sec,
        static_cast<unsigned long long>(capture_on.captured),
        static_cast<unsigned long long>(capture_on.dropped),
        capture_conserved ? "true" : "false", capture_overhead_pct);
    json = buffer;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("%s", json.c_str());
  }
  return 0;
}
