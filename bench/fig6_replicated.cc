// Figure 6 with replication: the paper plots a single 24-hour
// trajectory; this bench repeats the experiment across five seeds and
// reports mean +/- stddev per period, separating the controller's
// systematic behaviour from run-to-run noise.
#include <cstdio>

#include "harness/replication.h"

int main() {
  qsched::harness::ExperimentConfig config;
  const int kReplications = 5;
  std::printf("=== Figure 6, replicated x%d (mean +/- stddev) ===\n",
              kReplications);
  auto result = qsched::harness::RunReplicated(
      config, qsched::harness::ControllerKind::kQueryScheduler,
      kReplications);

  std::printf("period  class1_vel        class2_vel        "
              "class3_resp_s\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %5.3f +/- %5.3f  %5.3f +/- %5.3f  %5.3f +/- %5.3f\n",
                p + 1, result.velocity.at(1).mean[p],
                result.velocity.at(1).stddev[p],
                result.velocity.at(2).mean[p],
                result.velocity.at(2).stddev[p],
                result.response.at(3).mean[p],
                result.response.at(3).stddev[p]);
  }
  std::printf("periods meeting goal (mean +/- stddev across seeds):\n");
  for (int cls : {1, 2, 3}) {
    std::printf("  class %d: %.1f +/- %.1f of 18\n", cls,
                result.goal_periods_mean.at(cls),
                result.goal_periods_stddev.at(cls));
  }
  return 0;
}
