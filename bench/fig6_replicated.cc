// Figure 6 with replication: the paper plots a single 24-hour
// trajectory; this bench repeats the experiment across seeds and
// reports mean +/- stddev per period, separating the controller's
// systematic behaviour from run-to-run noise.
//
//   fig6_replicated [--replications=N] [--jobs=J]
//
// Replications are independent simulations; --jobs fans them out across
// worker threads (0 = one per hardware thread) with byte-identical
// aggregates.
#include <cstdio>

#include "common/flags.h"
#include "harness/replication.h"

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  qsched::harness::ExperimentConfig config;
  const int replications =
      static_cast<int>(flags.GetInt("replications", 5));
  qsched::harness::ReplicationOptions options;
  options.jobs = static_cast<int>(flags.GetInt("jobs", 1));
  std::printf("=== Figure 6, replicated x%d (mean +/- stddev) ===\n",
              replications);
  auto result = qsched::harness::RunReplicated(
      config, qsched::harness::ControllerKind::kQueryScheduler,
      replications, options);

  std::printf("period  class1_vel        class2_vel        "
              "class3_resp_s\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %5.3f +/- %5.3f  %5.3f +/- %5.3f  %5.3f +/- %5.3f\n",
                p + 1, result.velocity.at(1).mean[p],
                result.velocity.at(1).stddev[p],
                result.velocity.at(2).mean[p],
                result.velocity.at(2).stddev[p],
                result.response.at(3).mean[p],
                result.response.at(3).stddev[p]);
  }
  std::printf("periods meeting goal (mean +/- stddev across seeds):\n");
  for (int cls : {1, 2, 3}) {
    std::printf("  class %d: %.1f +/- %.1f of 18\n", cls,
                result.goal_periods_mean.at(cls),
                result.goal_periods_stddev.at(cls));
  }
  return 0;
}
