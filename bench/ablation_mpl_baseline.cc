// Ablation: MPL-based class control (in the spirit of Schroeder et al.,
// ICDE'06, which the paper cites) versus Query Scheduler's cost-based
// control, on the same mixed workload. MPL control ignores query size,
// so admitting "4 queries" means wildly different resource footprints
// depending on the mix — cost-based limits are steadier.
#include <cstdio>

#include "bench/figure_common.h"

int main() {
  qsched::harness::ExperimentConfig config;
  config.mpl.initial_mpl = {{1, 3}, {2, 3}};
  std::printf("=== MPL-based class control (adaptive) ===\n");
  auto mpl = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kMpl);
  qsched::bench::PrintPerformanceFigure(mpl);

  std::printf("\n--- Query Scheduler (cost-based), for comparison ---\n");
  auto qs = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQueryScheduler);
  qsched::bench::PrintPerformanceFigure(qs);
  return 0;
}
