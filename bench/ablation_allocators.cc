// Ablation: the paper's utility-maximizing search vs. the economic-model
// style greedy marginal-utility auction (see the authors' follow-up work
// on economic models for DBMS resource allocation). Same models, same
// utility functions — only the allocation algorithm differs.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  std::printf("=== Allocation algorithm ablation ===\n");
  {
    qsched::harness::ExperimentConfig config;
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    std::printf("utility search:  class1=%2d/18 class2=%2d/18 "
                "class3=%2d/18  t3=%.3f s\n",
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2),
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3));
  }
  {
    qsched::harness::ExperimentConfig config;
    config.qs.allocator =
        qsched::sched::QuerySchedulerConfig::Allocator::kGreedyAuction;
    auto result = qsched::harness::RunExperiment(
        config, qsched::harness::ControllerKind::kQueryScheduler);
    std::printf("greedy auction:  class1=%2d/18 class2=%2d/18 "
                "class3=%2d/18  t3=%.3f s\n",
                result.periods_meeting_goal.at(1),
                result.periods_meeting_goal.at(2),
                result.periods_meeting_goal.at(3),
                result.overall_response.at(3));
  }
  return 0;
}
