// Figure 6: Query Scheduler control — dynamic cost limits from utility
// optimization. The paper's finding: Class 3 meets its goal nearly all
// the time (oscillating around it when its intensity is high), and
// Class 2 outperforms Class 1 in most periods.
#include <cstdio>

#include "bench/figure_common.h"
#include "obs/telemetry.h"

int main(int argc, char** argv) {
  qsched::harness::ExperimentConfig config;
  qsched::obs::Telemetry telemetry;
  const char* report = qsched::bench::ReportHtmlPath(argc, argv);
  if (report != nullptr) config.telemetry = &telemetry;
  std::printf("=== Figure 6: Query Scheduler control ===\n");
  auto result = qsched::harness::RunExperiment(
      config, qsched::harness::ControllerKind::kQueryScheduler);
  qsched::bench::PrintPerformanceFigure(result);
  std::printf("fitted OLTP model slope s=%.3g s/timeron\n",
              result.oltp_model_slope);
  if (report != nullptr) {
    qsched::bench::WriteHtmlReport(report, result, &telemetry,
                                   "Figure 6: Query Scheduler control");
  }
  return 0;
}
