#!/usr/bin/env bash
# End-to-end smoke of the TCP front-end: starts net_cli --mode=serve on
# an ephemeral loopback port, drives it with --mode=netload (>= 2 s,
# targeting >= 1000 submissions/s), fires malformed frames at it, and
# checks conservation on both sides: offered = accepted + rejected, every
# accepted query completed exactly once (lost=0, unmatched=0), and the
# server's accepted = delivered + dropped. Registered with CTest as
# `net_smoke`.
#
# Usage: net_smoke.sh <path-to-net_cli>
set -euo pipefail

CLI="${1:?usage: net_smoke.sh <path-to-net_cli>}"
OUT_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill "${SERVER_PID}" 2>/dev/null || true
  [ -n "${SERVER_PID}" ] && wait "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${OUT_DIR}"
}
trap cleanup EXIT

PORT_FILE="${OUT_DIR}/port"
SERVER_LOG="${OUT_DIR}/server.log"
CLIENT_LOG="${OUT_DIR}/client.log"
METRICS="${OUT_DIR}/server_metrics.prom"

# Serve on an ephemeral port; generous duration, we SIGTERM it ourselves
# once the load is done (SIGTERM takes the same drain path as duration
# expiry).
"${CLI}" --mode=serve --port=0 --port-file="${PORT_FILE}" \
  --duration=120 --metrics-out="${METRICS}" >"${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "net_smoke: server died during startup" >&2
    cat "${SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
if [ -z "${PORT}" ]; then
  echo "net_smoke: server never published its port" >&2
  exit 1
fi

# >= 2 s of load at 2000 qps offered across 4 connections, plus the
# malformed-frame injection pass. net_cli exits nonzero on any
# conservation violation (lost or duplicated completions).
"${CLI}" --mode=netload --target="127.0.0.1:${PORT}" --connections=4 \
  --qps=2000 --duration=2.5 --seed=7 --inject-malformed=10 \
  | tee "${CLIENT_LOG}"

kill -TERM "${SERVER_PID}"
SERVER_STATUS=0
wait "${SERVER_PID}" || SERVER_STATUS=$?
SERVER_PID=""
if [ "${SERVER_STATUS}" -ne 0 ]; then
  echo "net_smoke: server exited with ${SERVER_STATUS}" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
fi
cat "${SERVER_LOG}"

# --- Client-side throughput + conservation from the NETLOAD line.
NETLOAD_LINE="$(grep '^NETLOAD ' "${CLIENT_LOG}")"
echo "${NETLOAD_LINE}" | awk '
  {
    for (i = 2; i <= NF; ++i) {
      split($i, kv, "=");
      v[kv[1]] = kv[2];
    }
  }
  END {
    if (v["rate"] + 0 < 1000) {
      print "net_smoke: sustained rate " v["rate"] " < 1000 qps" \
        > "/dev/stderr";
      exit 1;
    }
    if (v["wall"] + 0 < 2.0) {
      print "net_smoke: run too short: " v["wall"] "s" > "/dev/stderr";
      exit 1;
    }
    if (v["lost"] + 0 != 0 || v["unmatched"] + 0 != 0) {
      print "net_smoke: lost=" v["lost"] " unmatched=" v["unmatched"] \
        > "/dev/stderr";
      exit 1;
    }
    if (v["offered"] + 0 != v["accepted"] + v["rejected"]) {
      print "net_smoke: offered != accepted + rejected" > "/dev/stderr";
      exit 1;
    }
    if (v["completed"] + 0 != v["accepted"] + 0) {
      print "net_smoke: completed != accepted" > "/dev/stderr";
      exit 1;
    }
  }'

# --- Server survived the malformed frames and counted them.
grep -q 'server survived' "${CLIENT_LOG}"

# --- Server-side metrics exposition includes the qsched_net_* family.
grep -q '^# TYPE qsched_net_frames_in_total counter' "${METRICS}"
grep -q '^qsched_net_submit_accepted_total ' "${METRICS}"
grep -q '^# TYPE qsched_net_protocol_errors_total counter' "${METRICS}"

echo "net_smoke: conservation holds over loopback TCP"
