#!/usr/bin/env bash
# Smoke test for experiment_cli's observability exports: runs a short
# experiment with --trace-out / --metrics-out / --audit-out and validates
# that each artifact is well-formed. Registered with CTest as
# `experiment_cli_smoke`.
#
# Usage: smoke_experiment_cli.sh <path-to-experiment_cli>
set -eu

CLI="${1:?usage: smoke_experiment_cli.sh <path-to-experiment_cli>}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

TRACE="${OUT_DIR}/trace.json"
METRICS="${OUT_DIR}/metrics.prom"
AUDIT="${OUT_DIR}/audit.jsonl"

"${CLI}" --controller=query-scheduler --seed=7 --period-seconds=120 \
  --control-interval=60 \
  --trace-out="${TRACE}" --metrics-out="${METRICS}" \
  --audit-out="${AUDIT}" >/dev/null

for artifact in "${TRACE}" "${METRICS}" "${AUDIT}"; do
  if [ ! -s "${artifact}" ]; then
    echo "smoke: missing or empty artifact ${artifact}" >&2
    exit 1
  fi
done

# --- Chrome trace JSON: parse it (python3 when available) and check the
# trace_event scaffolding either way.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${TRACE}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no trace events"
slices = [e for e in events if e.get("ph") == "X"]
assert slices, "no complete ('X') slices"
tids = {e["tid"] for e in slices}
assert len(tids) >= 2, f"expected one track per class, got tids={tids}"
names = {e["name"] for e in slices}
assert "exec" in names, f"missing exec slices, got {names}"
threads = {e["args"]["name"] for e in events
           if e.get("ph") == "M" and e.get("name") == "thread_name"}
assert any("OLAP" in t for t in threads), threads
assert any("OLTP" in t for t in threads), threads
print(f"trace ok: {len(slices)} slices on {len(tids)} tracks")
EOF
else
  grep -q '"traceEvents"' "${TRACE}"
  grep -q '"exec"' "${TRACE}"
fi

# --- Prometheus text: typed families covering dispatcher, engine and SLO
# metrics.
grep -q '^# TYPE qsched_dispatcher_queue_depth gauge' "${METRICS}"
grep -q '^# TYPE qsched_engine_cpu_utilization gauge' "${METRICS}"
grep -q '^# TYPE qsched_slo_goal_ratio gauge' "${METRICS}"
grep -q '^qsched_qp_queue_wait_seconds{class="1",quantile="0.5"}' \
  "${METRICS}"
grep -q '^qsched_engine_queries_completed_total ' "${METRICS}"

# --- Audit JSONL: one JSON object per line — planner records first,
# then the SLO violation events tagged "type":"slo_violation".
lines=$(wc -l < "${AUDIT}")
if [ "${lines}" -lt 2 ]; then
  echo "smoke: expected >=2 audit records, got ${lines}" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - "${AUDIT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rows = [json.loads(line) for line in f]
records = [r for r in rows if r.get("type") != "slo_violation"]
events = [r for r in rows if r.get("type") == "slo_violation"]
for i, rec in enumerate(records):
    assert rec["interval"] == i + 1, (rec["interval"], i + 1)
    assert rec["classes"], "record with no classes"
    total = sum(c["enforced_limit"] for c in rec["classes"])
    assert abs(total - rec["system_cost_limit"]) < 1.0, total
for ev in events:
    assert ev["start_interval"] <= ev["end_interval"], ev
    assert ev["intervals"] >= 1, ev
    assert ev["worst_ratio"] < 1.0, ev
print(f"audit ok: {len(records)} records, {len(events)} violation events")
EOF
else
  head -1 "${AUDIT}" | grep -q '"interval":1'
  head -1 "${AUDIT}" | grep -q '"enforced_limit"'
fi

echo "smoke: all observability artifacts well-formed"
