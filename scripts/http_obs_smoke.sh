#!/usr/bin/env bash
# End-to-end smoke of the live observability plane: starts net_cli
# --mode=serve with the embedded HTTP server (--http-port=0), drives it
# with --mode=netload at >= 1000 submissions/s over loopback, and while
# the load is running scrapes GET /metrics, /varz, /healthz and
# /statusz. Checks:
#   - /metrics is valid Prometheus text exposition (python3 checker)
#     and carries qsched_stage_seconds for >= 3 distinct stages;
#   - /healthz answers 200 "accepting" while intake is open;
#   - /statusz is a self-contained HTML page with the latency-breakdown
#     section;
#   - the final /varz scrape agrees with the load generator's exit
#     accounting (accepted / completed conservation across the two
#     observation paths).
# Registered with CTest as `http_obs_smoke`.
#
# Usage: http_obs_smoke.sh <path-to-net_cli>
set -euo pipefail

CLI="${1:?usage: http_obs_smoke.sh <path-to-net_cli>}"
OUT_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill "${SERVER_PID}" 2>/dev/null || true
  [ -n "${SERVER_PID}" ] && wait "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${OUT_DIR}"
}
trap cleanup EXIT

fetch() {  # fetch <url> <out-file>; curl if present, else python3
  if command -v curl >/dev/null 2>&1; then
    curl -fsS --max-time 10 -o "$2" "$1"
  else
    python3 -c '
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as r:
    sys.stdout.buffer.write(r.read())' "$1" >"$2"
  fi
}

PORT_FILE="${OUT_DIR}/port"
HTTP_PORT_FILE="${OUT_DIR}/http_port"
SERVER_LOG="${OUT_DIR}/server.log"
CLIENT_LOG="${OUT_DIR}/client.log"

"${CLI}" --mode=serve --port=0 --port-file="${PORT_FILE}" \
  --http-port=0 --http-port-file="${HTTP_PORT_FILE}" \
  --duration=120 >"${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && [ -s "${HTTP_PORT_FILE}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "http_obs_smoke: server died during startup" >&2
    cat "${SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
HTTP_PORT="$(cat "${HTTP_PORT_FILE}")"
if [ -z "${PORT}" ] || [ -z "${HTTP_PORT}" ]; then
  echo "http_obs_smoke: server never published its ports" >&2
  exit 1
fi
BASE="http://127.0.0.1:${HTTP_PORT}"

# Load in the background so the scrapes below observe a server that is
# actively completing queries (>= 1000 submissions/s sustained).
"${CLI}" --mode=netload --target="127.0.0.1:${PORT}" --connections=4 \
  --qps=2000 --duration=3 --seed=7 >"${CLIENT_LOG}" 2>&1 &
LOAD_PID=$!

# Scrape mid-load: by 1.5 s in, completions have flowed through every
# stage histogram.
sleep 1.5
fetch "${BASE}/metrics" "${OUT_DIR}/metrics.prom"
fetch "${BASE}/healthz" "${OUT_DIR}/healthz.txt"
fetch "${BASE}/statusz" "${OUT_DIR}/statusz.html"

wait "${LOAD_PID}" || {
  echo "http_obs_smoke: netload failed" >&2
  cat "${CLIENT_LOG}" >&2
  exit 1
}
cat "${CLIENT_LOG}"

# Final scrape after the load has drained: the counters are now stable
# and must agree with the client's own accounting.
fetch "${BASE}/varz" "${OUT_DIR}/varz.json"

kill -TERM "${SERVER_PID}"
SERVER_STATUS=0
wait "${SERVER_PID}" || SERVER_STATUS=$?
SERVER_PID=""
if [ "${SERVER_STATUS}" -ne 0 ]; then
  echo "http_obs_smoke: server exited with ${SERVER_STATUS}" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
fi
cat "${SERVER_LOG}"

# --- The load really ran at >= 1000 submissions/s.
NETLOAD_LINE="$(grep '^NETLOAD ' "${CLIENT_LOG}")"
echo "${NETLOAD_LINE}" | awk '
  {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; }
  }
  END {
    if (v["rate"] + 0 < 1000) {
      print "http_obs_smoke: rate " v["rate"] " < 1000/s" > "/dev/stderr";
      exit 1;
    }
  }'

# --- /healthz said "accepting" while intake was open.
grep -qx 'accepting' "${OUT_DIR}/healthz.txt"

# --- /metrics is well-formed Prometheus text exposition and carries
#     per-stage latency histograms for at least 3 distinct stages.
python3 - "${OUT_DIR}/metrics.prom" <<'PYEOF'
import re, sys

path = sys.argv[1]
sample_re = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})?\s[^\s]+(\s[0-9]+)?$')
typed = set()
stages = set()
families_seen = []
with open(path) as f:
    lines = f.read().splitlines()
if not lines:
    sys.exit("http_obs_smoke: /metrics returned an empty body")
for n, line in enumerate(lines, 1):
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"):
            sys.exit(f"http_obs_smoke: bad TYPE line {n}: {line}")
        if parts[2] in typed:
            sys.exit(f"http_obs_smoke: duplicate TYPE for {parts[2]}")
        typed.add(parts[2])
        continue
    if line.startswith("#"):
        continue
    if not sample_re.match(line):
        sys.exit(f"http_obs_smoke: malformed sample line {n}: {line}")
    name = re.split(r"[{\s]", line, 1)[0]
    families_seen.append(name)
    m = re.search(r'stage="([^"]+)"', line)
    if m and name.startswith("qsched_stage_seconds"):
        stages.add(m.group(1))
for name in families_seen:
    base = re.sub(r"_(count|sum|min|max)$", "", name)
    if name not in typed and base not in typed:
        sys.exit(f"http_obs_smoke: sample {name} has no TYPE")
if len(stages) < 3:
    sys.exit(f"http_obs_smoke: only stages {sorted(stages)} in "
             "qsched_stage_seconds, need >= 3")
print(f"http_obs_smoke: exposition OK, stages: {sorted(stages)}")
PYEOF

# --- /statusz is a self-contained HTML page with the latency breakdown.
grep -q '<!DOCTYPE html>' "${OUT_DIR}/statusz.html"
grep -q 'Latency breakdown' "${OUT_DIR}/statusz.html"
grep -q '<svg' "${OUT_DIR}/statusz.html"
if grep -Eq 'src=|href=' "${OUT_DIR}/statusz.html"; then
  echo "http_obs_smoke: /statusz references external resources" >&2
  exit 1
fi

# --- Conservation: the final /varz scrape and the load generator's exit
#     accounting describe the same run.
python3 - "${OUT_DIR}/varz.json" "${NETLOAD_LINE}" <<'PYEOF'
import json, sys

varz = json.load(open(sys.argv[1]))
metrics = varz["metrics"]
netload = dict(kv.split("=") for kv in sys.argv[2].split()[1:])

pairs = [
    ("qsched_rt_accepted_total", int(netload["accepted"])),
    ("qsched_rt_completed_total", int(netload["completed"])),
    ("qsched_rt_rejected_total", int(netload["rejected"])),
]
for name, want in pairs:
    got = int(metrics[name])
    if got != want:
        sys.exit(f"http_obs_smoke: {name}={got} but netload says {want}")
if int(netload["lost"]) or int(netload["unmatched"]):
    sys.exit("http_obs_smoke: netload lost/unmatched completions")
print("http_obs_smoke: /varz agrees with netload exit accounting")
PYEOF

echo "http_obs_smoke: live observability plane OK"
