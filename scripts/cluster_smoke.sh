#!/usr/bin/env bash
# End-to-end smoke of the cluster layer: two net_cli backends on
# ephemeral loopback ports, cluster_cli --mode=route fanning over them,
# driven by net_cli --mode=netload for >= 2 s at >= 1000 submissions/s
# THROUGH the router — with backend 1 killed and restarted on its port
# mid-run. Conservation is exit-checked on every tier: the load
# generator (offered = accepted + rejected, completed = accepted,
# lost = 0), the router (offered = accepted + rejected_relayed +
# rejected_unroutable; cluster_cli exits 2 otherwise) and the surviving
# backends. When the committed BENCH_qsched.json carries a
# cluster_loopback.direct_sustained_qps baseline, the routed rate must
# also stay >= 0.8x of it. Registered with CTest as `cluster_smoke`.
#
# Usage: cluster_smoke.sh <path-to-net_cli> <path-to-cluster_cli>
set -euo pipefail

NET_CLI="${1:?usage: cluster_smoke.sh <net_cli> <cluster_cli>}"
CLUSTER_CLI="${2:?usage: cluster_smoke.sh <net_cli> <cluster_cli>}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$(mktemp -d)"
B1_PID=""
B2_PID=""
ROUTER_PID=""
cleanup() {
  for pid in "${B1_PID}" "${B2_PID}" "${ROUTER_PID}"; do
    [ -n "${pid}" ] && kill "${pid}" 2>/dev/null || true
    [ -n "${pid}" ] && wait "${pid}" 2>/dev/null || true
  done
  rm -rf "${OUT_DIR}"
}
trap cleanup EXIT

wait_port_file() {
  local file="$1" pid="$2" who="$3"
  for _ in $(seq 1 100); do
    [ -s "${file}" ] && return 0
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "cluster_smoke: ${who} died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "cluster_smoke: ${who} never published its port" >&2
  return 1
}

# --- Two backends on ephemeral ports.
"${NET_CLI}" --mode=serve --port=0 --port-file="${OUT_DIR}/b1.port" \
  --duration=120 >"${OUT_DIR}/b1.log" 2>&1 &
B1_PID=$!
"${NET_CLI}" --mode=serve --port=0 --port-file="${OUT_DIR}/b2.port" \
  --duration=120 >"${OUT_DIR}/b2.log" 2>&1 &
B2_PID=$!
wait_port_file "${OUT_DIR}/b1.port" "${B1_PID}" "backend 1"
wait_port_file "${OUT_DIR}/b2.port" "${B2_PID}" "backend 2"
B1_PORT="$(cat "${OUT_DIR}/b1.port")"
B2_PORT="$(cat "${OUT_DIR}/b2.port")"

# --- The router in front of them. Short probe intervals so the breaker
# reacts within the restart window.
"${CLUSTER_CLI}" --mode=route \
  --backends="127.0.0.1:${B1_PORT},127.0.0.1:${B2_PORT}" \
  --port=0 --port-file="${OUT_DIR}/router.port" --duration=120 \
  --probe-interval=0.1 --probe-timeout=0.5 --eject-after=2 \
  --metrics-out="${OUT_DIR}/router_metrics.prom" \
  >"${OUT_DIR}/router.log" 2>&1 &
ROUTER_PID=$!
wait_port_file "${OUT_DIR}/router.port" "${ROUTER_PID}" "router"
ROUTER_PORT="$(cat "${OUT_DIR}/router.port")"

# --- >= 2 s of load at 2000 qps offered, pipelined, through the router.
"${NET_CLI}" --mode=netload --target="127.0.0.1:${ROUTER_PORT}" \
  --connections=4 --qps=2000 --duration=3 --seed=7 --pipeline \
  >"${OUT_DIR}/client.log" 2>&1 &
LOAD_PID=$!

# --- Mid-run: kill backend 2 and restart it on the same port. The
# router must eject it, fail queries over to backend 1, and pick it
# back up once it returns — without the load generator losing a single
# accepted completion.
sleep 1
kill -TERM "${B2_PID}"
wait "${B2_PID}" || true
B2_PID=""
sleep 0.4
"${NET_CLI}" --mode=serve --port="${B2_PORT}" --duration=120 \
  >"${OUT_DIR}/b2_restarted.log" 2>&1 &
B2_PID=$!

LOAD_STATUS=0
wait "${LOAD_PID}" || LOAD_STATUS=$?
cat "${OUT_DIR}/client.log"
if [ "${LOAD_STATUS}" -ne 0 ]; then
  echo "cluster_smoke: netload exited ${LOAD_STATUS} (conservation?)" >&2
  exit 1
fi

# --- Stop the router; it exits 2 on a conservation violation.
kill -TERM "${ROUTER_PID}"
ROUTER_STATUS=0
wait "${ROUTER_PID}" || ROUTER_STATUS=$?
ROUTER_PID=""
cat "${OUT_DIR}/router.log"
if [ "${ROUTER_STATUS}" -ne 0 ]; then
  echo "cluster_smoke: router exited ${ROUTER_STATUS}" >&2
  exit 1
fi

# --- Client-side throughput + conservation from the NETLOAD line.
NETLOAD_LINE="$(grep '^NETLOAD ' "${OUT_DIR}/client.log")"
echo "${NETLOAD_LINE}" | awk '
  {
    for (i = 2; i <= NF; ++i) {
      split($i, kv, "=");
      v[kv[1]] = kv[2];
    }
  }
  END {
    if (v["rate"] + 0 < 1000) {
      print "cluster_smoke: sustained rate " v["rate"] " < 1000 qps" \
        > "/dev/stderr";
      exit 1;
    }
    if (v["wall"] + 0 < 2.0) {
      print "cluster_smoke: run too short: " v["wall"] "s" \
        > "/dev/stderr";
      exit 1;
    }
    if (v["lost"] + 0 != 0 || v["unmatched"] + 0 != 0) {
      print "cluster_smoke: lost=" v["lost"] \
        " unmatched=" v["unmatched"] > "/dev/stderr";
      exit 1;
    }
    if (v["offered"] + 0 != v["accepted"] + v["rejected"]) {
      print "cluster_smoke: offered != accepted + rejected" \
        > "/dev/stderr";
      exit 1;
    }
    if (v["completed"] + 0 != v["accepted"] + 0) {
      print "cluster_smoke: completed != accepted" > "/dev/stderr";
      exit 1;
    }
  }'

# --- The router actually noticed the restart: its CLUSTER accounting
# line exists, and the reconnect counter moved.
grep -q '^CLUSTER ' "${OUT_DIR}/router.log"
grep -q '^# TYPE qsched_cluster_backend_health gauge' \
  "${OUT_DIR}/router_metrics.prom"
grep -q '^qsched_cluster_routed_total' "${OUT_DIR}/router_metrics.prom"
RECONNECTS="$(awk '/^qsched_cluster_reconnects_total/ { s += $2 } END { print s + 0 }' \
  "${OUT_DIR}/router_metrics.prom")"
if [ "${RECONNECTS}" -lt 3 ]; then
  # 2 initial connects + at least 1 reconnect after the restart.
  echo "cluster_smoke: expected >= 3 connects across the restart," \
    "saw ${RECONNECTS}" >&2
  exit 1
fi

# --- Routed throughput vs the committed direct baseline (when present).
BASELINE="${ROOT}/BENCH_qsched.json"
if command -v python3 >/dev/null 2>&1 && [ -f "${BASELINE}" ]; then
  RATE="$(echo "${NETLOAD_LINE}" | awk '{
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; }
    print v["rate"];
  }')"
  python3 - "${BASELINE}" "${RATE}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
direct = doc.get("cluster_loopback", {}).get("direct_sustained_qps")
if direct is None:
    print("cluster_smoke: no committed direct baseline; skipping ratio")
    sys.exit(0)
rate = float(sys.argv[2])
if rate < 0.8 * float(direct):
    print(f"cluster_smoke: routed {rate:.0f} qps < 0.8x committed "
          f"direct baseline {direct:.0f} qps", file=sys.stderr)
    sys.exit(1)
print(f"cluster_smoke: routed {rate:.0f} qps >= 0.8x direct baseline "
      f"{direct:.0f} qps")
EOF
fi

echo "cluster_smoke: conservation holds through a mid-run backend restart"
