#!/usr/bin/env bash
# End-to-end smoke of capture & replay (DESIGN.md §13). Three acts:
#
#  1. Capture: net_cli --mode=serve with --capture-trace under a
#     deliberately tight --cost-limit=5000 (so the live run violates its
#     OLAP goals and leaves room for a better plan), driven by
#     --mode=netload at >= 1000 submissions/s. Checks client-side
#     conservation AND the recorder invariant
#     captured + dropped == offered.
#  2. Replay: a fresh serve on a new port, the trace replayed at 2x
#     speed; replay_cli exits 2 on any conservation violation, and the
#     REPLAY line is re-checked here.
#  3. Whatif: the shadow planner over >= 3 candidate plans. The report
#     must be byte-identical at --jobs=1 vs --jobs=4, and at least one
#     candidate must beat the live run's measured utility.
#
# Registered with CTest as `replay_smoke`.
#
# Usage: replay_smoke.sh <path-to-net_cli> <path-to-replay_cli>
set -euo pipefail

NET_CLI="${1:?usage: replay_smoke.sh <net_cli> <replay_cli>}"
REPLAY_CLI="${2:?usage: replay_smoke.sh <net_cli> <replay_cli>}"
OUT_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill "${SERVER_PID}" 2>/dev/null || true
  [ -n "${SERVER_PID}" ] && wait "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${OUT_DIR}"
}
trap cleanup EXIT

TRACE="${OUT_DIR}/trace.bin"

# --- Act 1: capture during live load under a tight cost limit. --------
PORT_FILE="${OUT_DIR}/capture_port"
CAPTURE_LOG="${OUT_DIR}/capture_server.log"
LOAD_LOG="${OUT_DIR}/netload.log"

"${NET_CLI}" --mode=serve --port=0 --port-file="${PORT_FILE}" \
  --duration=120 --cost-limit=5000 --capture-trace="${TRACE}" \
  >"${CAPTURE_LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "replay_smoke: capture server died during startup" >&2
    cat "${CAPTURE_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"

"${NET_CLI}" --mode=netload --target="127.0.0.1:${PORT}" \
  --connections=4 --qps=2000 --duration=2.5 --seed=7 \
  | tee "${LOAD_LOG}"

kill -TERM "${SERVER_PID}"
SERVER_STATUS=0
wait "${SERVER_PID}" || SERVER_STATUS=$?
SERVER_PID=""
if [ "${SERVER_STATUS}" -ne 0 ]; then
  echo "replay_smoke: capture server exited with ${SERVER_STATUS}" >&2
  cat "${CAPTURE_LOG}" >&2
  exit 1
fi
cat "${CAPTURE_LOG}"

NETLOAD_LINE="$(grep '^NETLOAD ' "${LOAD_LOG}")"
CAPTURE_LINE="$(grep '^CAPTURE ' "${CAPTURE_LOG}")"
OFFERED="$(echo "${NETLOAD_LINE}" | awk '
  { for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; } }
  END {
    if (v["rate"] + 0 < 1000) {
      print "replay_smoke: rate " v["rate"] " < 1000 qps" > "/dev/stderr";
      exit 1;
    }
    if (v["lost"] + 0 != 0 || v["unmatched"] + 0 != 0) {
      print "replay_smoke: netload lost/unmatched" > "/dev/stderr";
      exit 1;
    }
    print v["offered"];
  }')"

# Recorder conservation: every offered query is either captured or
# counted as dropped — nothing vanishes.
echo "${CAPTURE_LINE}" | awk -v offered="${OFFERED}" '
  { for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; } }
  END {
    if (v["captured"] + v["dropped"] != offered + 0) {
      print "replay_smoke: captured " v["captured"] " + dropped " \
        v["dropped"] " != offered " offered > "/dev/stderr";
      exit 1;
    }
    if (v["captured"] + 0 < 1000) {
      print "replay_smoke: captured only " v["captured"] > "/dev/stderr";
      exit 1;
    }
  }'
CAPTURED="$(echo "${CAPTURE_LINE}" | awk '
  { for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; } }
  END { print v["captured"]; }')"

# The trace parses and carries the live summary.
"${REPLAY_CLI}" --mode=capture-info --trace="${TRACE}" \
  | tee "${OUT_DIR}/info.log"
grep -q 'live summary' "${OUT_DIR}/info.log"

# --- Act 2: replay the trace at 2x against a fresh server. ------------
PORT_FILE2="${OUT_DIR}/replay_port"
REPLAY_SERVER_LOG="${OUT_DIR}/replay_server.log"
REPLAY_LOG="${OUT_DIR}/replay.log"
REPLAY_METRICS="${OUT_DIR}/replay_metrics.prom"

"${NET_CLI}" --mode=serve --port=0 --port-file="${PORT_FILE2}" \
  --duration=120 >"${REPLAY_SERVER_LOG}" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE2}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "replay_smoke: replay server died during startup" >&2
    cat "${REPLAY_SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
PORT2="$(cat "${PORT_FILE2}")"

# replay_cli itself exits 2 on a conservation violation; set -e guards.
"${REPLAY_CLI}" --mode=replay --trace="${TRACE}" \
  --target="127.0.0.1:${PORT2}" --speed=2 --connections=4 \
  --metrics-out="${REPLAY_METRICS}" | tee "${REPLAY_LOG}"

kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}" || true
SERVER_PID=""

grep '^REPLAY ' "${REPLAY_LOG}" | awk -v captured="${CAPTURED}" '
  { for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2]; } }
  END {
    if (v["speed"] + 0 != 2) {
      print "replay_smoke: speed " v["speed"] " != 2" > "/dev/stderr";
      exit 1;
    }
    if (v["offered"] + 0 != captured + 0) {
      print "replay_smoke: replay offered " v["offered"] \
        " != captured " captured > "/dev/stderr";
      exit 1;
    }
    if (v["lost"] + 0 != 0 || v["unmatched"] + 0 != 0) {
      print "replay_smoke: replay lost/unmatched" > "/dev/stderr";
      exit 1;
    }
    if (v["offered"] + 0 != v["accepted"] + v["rejected"]) {
      print "replay_smoke: replay offered != accepted + rejected" \
        > "/dev/stderr";
      exit 1;
    }
  }'
grep -q '^qsched_replay_rtt_seconds' "${REPLAY_METRICS}"

# --- Act 3: shadow what-if over the captured interval. ----------------
PLANS="base,greedy,olap=20000,limit=300000+interval=5"
"${REPLAY_CLI}" --mode=whatif --trace="${TRACE}" --plans="${PLANS}" \
  --jobs=1 --out="${OUT_DIR}/whatif_j1.txt" >/dev/null
"${REPLAY_CLI}" --mode=whatif --trace="${TRACE}" --plans="${PLANS}" \
  --jobs=4 --out="${OUT_DIR}/whatif_j4.txt" >/dev/null

# Bit-determinism across --jobs.
cmp "${OUT_DIR}/whatif_j1.txt" "${OUT_DIR}/whatif_j4.txt"
cat "${OUT_DIR}/whatif_j1.txt"

# At least one candidate plan must beat the live run's measured
# utility (the capture ran under a starved 5000-timeron cost limit, so
# there is headroom by construction). Plan names contain ':' after
# sanitizing, so split each field on its first '=' only.
awk '
  /^WHATIF / {
    utility = -1; plan = "";
    for (i = 2; i <= NF; ++i) {
      eq = index($i, "=");
      if (eq == 0) continue;
      key = substr($i, 1, eq - 1);
      val = substr($i, eq + 1);
      if (key == "plan") plan = val;
      if (key == "utility") utility = val + 0;
    }
    if (plan == "live") live = utility;
    else if (utility > best) { best = utility; best_plan = plan; }
    seen++;
  }
  BEGIN { best = -1e18; live = "unset"; }
  END {
    if (seen < 4) {  # live + >= 3 candidates
      print "replay_smoke: only " seen " WHATIF lines" > "/dev/stderr";
      exit 1;
    }
    if (live == "unset") {
      print "replay_smoke: no live WHATIF line" > "/dev/stderr";
      exit 1;
    }
    if (best <= live + 0) {
      print "replay_smoke: no candidate beats live utility " live \
        " (best " best_plan " = " best ")" > "/dev/stderr";
      exit 1;
    }
    print "replay_smoke: " best_plan " predicts utility " best \
      " > live " live;
  }' "${OUT_DIR}/whatif_j1.txt"

echo "replay_smoke: capture, 2x replay and what-if all hold"
