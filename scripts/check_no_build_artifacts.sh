#!/usr/bin/env bash
# Guards against build trees leaking into version control (a PR 2
# regression tracked ~525 files under build-tsan/). Fails when any
# tracked path starts with "build"; .gitignore covers build*/ so new
# trees stay untracked. Registered with CTest as `no_build_artifacts`
# (exit 77 = skipped when git or the repo is unavailable).
#
# Usage: scripts/check_no_build_artifacts.sh
set -u

cd "$(dirname "$0")/.."

if ! command -v git >/dev/null 2>&1; then
  echo "check_no_build_artifacts: git not found; skipping" >&2
  exit 77
fi
if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_no_build_artifacts: not a git work tree; skipping" >&2
  exit 77
fi

TRACKED=$(git ls-files | grep -E '^build' || true)
if [ -n "${TRACKED}" ]; then
  COUNT=$(printf '%s\n' "${TRACKED}" | wc -l)
  echo "check_no_build_artifacts: ${COUNT} tracked build artifact(s):" >&2
  printf '%s\n' "${TRACKED}" | head -10 >&2
  echo "fix with: git rm -r --cached <build-dir>" >&2
  exit 1
fi
echo "check_no_build_artifacts: OK (no tracked build*/ paths)"
