#!/usr/bin/env bash
# Smoke test for the self-contained HTML run report: runs a short
# experiment with --report-html (plus the CSV exports that ride on the
# same telemetry) and validates the output is non-empty, well-formed
# HTML with one inline <svg> per chart and no external references.
# Registered with CTest as `report_html_smoke`.
#
# Usage: smoke_report_html.sh <path-to-experiment_cli>
set -eu

CLI="${1:?usage: smoke_report_html.sh <path-to-experiment_cli>}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

REPORT="${OUT_DIR}/report.html"
TIMESERIES="${OUT_DIR}/timeseries.csv"
PREDICTIONS="${OUT_DIR}/predictions.csv"

"${CLI}" --controller=query-scheduler --seed=7 --period-seconds=120 \
  --control-interval=60 \
  --report-html="${REPORT}" --timeseries-csv="${TIMESERIES}" \
  --predictions-csv="${PREDICTIONS}" >/dev/null

for artifact in "${REPORT}" "${TIMESERIES}" "${PREDICTIONS}"; do
  if [ ! -s "${artifact}" ]; then
    echo "report smoke: missing or empty artifact ${artifact}" >&2
    exit 1
  fi
done

# --- CSV exports: fixed headers, at least one data row each.
head -1 "${TIMESERIES}" | grep -q \
  '^interval,sim_time,class_id,is_oltp,cost_limit,measured,goal_ratio'
head -1 "${PREDICTIONS}" | grep -q \
  '^predicted_at,target_interval,class_id,is_oltp,predicted,observed'
[ "$(wc -l < "${TIMESERIES}")" -ge 2 ]
[ "$(wc -l < "${PREDICTIONS}")" -ge 2 ]

# --- HTML: well-formed, self-contained, charts present.
if ! command -v python3 >/dev/null 2>&1; then
  # Minimal fallback: the report must at least carry the chart SVGs.
  [ "$(grep -c '<svg' "${REPORT}")" -ge 4 ]
  echo "report smoke ok (python3 unavailable; grep check only)"
  exit 0
fi

python3 - "${REPORT}" <<'EOF'
import re
import sys
from html.parser import HTMLParser

VOID = {"meta", "br", "img", "hr", "input", "link",
        "circle", "line", "polyline", "path", "rect"}

class Checker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.svg = 0
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag == "svg":
            self.svg += 1
        if tag not in VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        if tag == "svg":
            self.svg += 1

    def handle_endtag(self, tag):
        if tag in VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"mismatched </{tag}> at {self.getpos()}")
        else:
            self.stack.pop()

with open(sys.argv[1]) as f:
    html = f.read()

checker = Checker()
checker.feed(html)
checker.close()
assert not checker.errors, checker.errors[:5]
assert not checker.stack, f"unclosed tags: {checker.stack}"

# One inline <svg> per chart: cost limits, velocity, response,
# attainment are always present; residual/slope charts join them on
# telemetry-enabled runs like this one.
assert checker.svg >= 4, f"expected >= 4 charts, got {checker.svg}"

for heading in ("Cost limits", "velocity", "response", "SLO attainment"):
    assert heading.lower() in html.lower(), f"missing section: {heading}"

# Self-contained: no scripts, no external fetches.
assert "<script" not in html.lower(), "report must not contain scripts"
assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html), \
    "report must not reference external resources"

print(f"report smoke ok: {checker.svg} charts, {len(html)} bytes")
EOF

echo "report smoke: HTML report well-formed and self-contained"
