#!/usr/bin/env python3
"""Compares two perf_bench JSON reports and fails on regression.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold=0.25]

The tracked metrics are rates and latencies, so they are comparable even
when the two runs used different sizing knobs (--events, durations):

  event_queue.fast_events_per_sec   higher is better
  fig6.events_per_sec               higher is better
  rt_gateway.sustained_qps          higher is better
  net_loopback.sustained_qps        higher is better
  net_latency.rtt_p50_us            lower is better
  replay_capture.capture_on_qps     higher is better

(net_loopback.rtt_p50_us is deliberately not tracked: in pipelined mode
it measures time spent queued at the configured in-flight depth, which
varies with sizing, not serving-path speed.)

A metric regresses when it is worse than the baseline by more than
`threshold` (default 25%). Metrics missing from either file are skipped
(schema evolution is not a regression). Exit codes: 0 ok, 1 regression,
2 malformed input.
"""

import json
import sys

# (dotted path, higher_is_better)
METRICS = [
    ("event_queue.fast_events_per_sec", True),
    ("fig6.events_per_sec", True),
    ("rt_gateway.sustained_qps", True),
    ("net_loopback.sustained_qps", True),
    ("net_latency.rtt_p50_us", False),
    ("cluster_loopback.sustained_qps", True),
    ("replay_capture.capture_on_qps", True),
]


def lookup(doc, path):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.25
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(args[0]) as f:
            baseline = json.load(f)
        with open(args[1]) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read input: {e}", file=sys.stderr)
        return 2

    regressions = []
    for path, higher_is_better in METRICS:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        if base is None or cur is None or base <= 0:
            print(f"  {path:<40} skipped (missing or non-positive)")
            continue
        # Relative change, signed so positive = improvement.
        if higher_is_better:
            change = cur / base - 1.0
        else:
            change = base / cur - 1.0 if cur > 0 else -1.0
        marker = ""
        if change < -threshold:
            marker = f"  REGRESSION (> {threshold:.0%} worse)"
            regressions.append(path)
        print(f"  {path:<40} {base:>14.1f} -> {cur:>14.1f} "
              f"({change:+.1%}){marker}")

    if regressions:
        print(f"bench_compare: {len(regressions)} metric(s) regressed "
              f"beyond {threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
