#!/usr/bin/env bash
# Checks that every C++ source file conforms to the repo's .clang-format
# (Google style, 78-column limit). Exits non-zero on the first violation;
# run clang-format -i over the offending files to fix.
#
# Usage: scripts/check_format.sh [clang-format-binary]
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-}"
if [ -z "${CLANG_FORMAT}" ]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
      clang-format-17 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [ -z "${CLANG_FORMAT}" ] || ! command -v "${CLANG_FORMAT}" >/dev/null 2>&1; then
  echo "check_format: no clang-format binary found on PATH" >&2
  echo "  install clang-format or pass the binary path as the first arg" >&2
  # 77 = skipped (CTest SKIP_RETURN_CODE): absence of the tool is not a
  # style violation.
  exit 77
fi

FILES=$(find src tests bench examples \
  \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) | sort)
if [ -z "${FILES}" ]; then
  echo "check_format: no source files found (run from the repo root?)" >&2
  exit 2
fi

# --dry-run --Werror: print diagnostics and fail without rewriting files.
# shellcheck disable=SC2086
if "${CLANG_FORMAT}" --dry-run --Werror ${FILES}; then
  echo "check_format: OK ($(echo "${FILES}" | wc -l) files)"
else
  echo "check_format: style violations found (see above);" \
       "fix with: ${CLANG_FORMAT} -i <files>" >&2
  exit 1
fi
