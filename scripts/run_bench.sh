#!/usr/bin/env bash
# Runs the tracked performance benchmark (bench/perf_bench) and writes
# BENCH_qsched.json at the repo root, validating that the emitted JSON
# parses. Pass a perf_bench path to override the default build location;
# extra arguments are forwarded (e.g. --events=... --jobs=...).
#
# Usage: run_bench.sh [path-to-perf_bench] [perf_bench flags...]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="${ROOT}/build/bench/perf_bench"
if [ "$#" -ge 1 ] && [ -x "$1" ]; then
  BENCH="$1"
  shift
fi
if [ ! -x "${BENCH}" ]; then
  echo "run_bench: ${BENCH} not built (cmake --build build -j)" >&2
  exit 1
fi

OUT="${ROOT}/BENCH_qsched.json"
"${BENCH}" --out="${OUT}" "$@"

# Stamp provenance into the tracked artifact from the script side; the
# bench binary itself stays hermetic (no git or wall-clock dependency),
# so identical runs emit identical JSON and the stamp records where and
# when this artifact came from.
GIT_SHA="$(git -C "${ROOT}" rev-parse HEAD 2>/dev/null || echo unknown)"
GENERATED_AT="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" "${GIT_SHA}" "${GENERATED_AT}" <<'EOF'
import json, sys
path, sha, when = sys.argv[1:4]
with open(path) as f:
    doc = json.load(f)
doc["git_sha"] = sha
doc["generated_at"] = when
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
fi

# The benchmark's JSON is the tracked artifact — refuse to keep a
# malformed one.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for section in ("event_queue", "fig6", "replication", "rt_gateway",
                "net_loopback", "net_latency", "cluster_loopback",
                "http_obs", "replay_capture"):
    assert section in doc, f"missing section {section}"
assert "git_sha" in doc, "missing git_sha stamp"
assert "generated_at" in doc, "missing generated_at stamp"
assert "hardware_concurrency" in doc, "missing hardware_concurrency"
assert "threads_used" in doc, "missing top-level threads_used"
assert doc["event_queue"]["fast_events_per_sec"] > 0
assert doc["replication"]["serial_seconds"] > 0
rt = doc["rt_gateway"]
assert rt["sustained_qps"] > 0, "rt gateway sustained no load"
assert rt["completed"] + rt["shed"] == rt["offered"], \
    "rt gateway lost queries: " \
    f"offered {rt['offered']} != completed {rt['completed']} " \
    f"+ shed {rt['shed']}"
assert rt["admission_p99_us"] >= rt["admission_p50_us"] >= 0
net = doc["net_loopback"]
assert net["sustained_qps"] > 0, "net loopback sustained no load"
assert net["offered"] == net["accepted"] + net["rejected"], \
    "net loopback accounting broken: " \
    f"offered {net['offered']} != accepted {net['accepted']} " \
    f"+ rejected {net['rejected']}"
assert net["completed"] == net["accepted"], \
    f"net loopback completions {net['completed']} != accepted " \
    f"{net['accepted']}"
assert net["lost"] == 0, f"net loopback lost {net['lost']} completions"
assert net["rtt_p99_us"] >= net["rtt_p50_us"] >= 0
lat = doc["net_latency"]
assert lat["offered"] == lat["accepted"] + lat["rejected"], \
    "net latency accounting broken: " \
    f"offered {lat['offered']} != accepted {lat['accepted']} " \
    f"+ rejected {lat['rejected']}"
assert lat["completed"] == lat["accepted"], \
    f"net latency completions {lat['completed']} != accepted " \
    f"{lat['accepted']}"
assert lat["lost"] == 0, f"net latency lost {lat['lost']} completions"
assert lat["rtt_p99_us"] >= lat["rtt_p50_us"] >= 0
clu = doc["cluster_loopback"]
assert clu["conserved"], "cluster_loopback conservation violated"
assert clu["offered"] == clu["accepted"] + clu["rejected"], \
    "cluster_loopback accounting broken: " \
    f"offered {clu['offered']} != accepted {clu['accepted']} " \
    f"+ rejected {clu['rejected']}"
assert clu["completed"] == clu["accepted"], \
    f"cluster_loopback completions {clu['completed']} != accepted " \
    f"{clu['accepted']}"
assert clu["lost"] == 0, f"cluster_loopback lost {clu['lost']} completions"
assert clu["sustained_qps"] >= 0.8 * clu["direct_sustained_qps"], \
    f"routed sustained {clu['sustained_qps']} qps < 0.8x direct " \
    f"{clu['direct_sustained_qps']} qps"
obs = doc["http_obs"]
assert obs["detached_completions_per_sec"] > 0, \
    "http_obs detached pass completed nothing"
assert obs["attached_completions_per_sec"] > 0, \
    "http_obs attached pass completed nothing"
assert obs["scrapes"] > 0, "the 1 Hz scraper never scraped"
cap = doc["replay_capture"]
assert cap["conserved"], \
    "replay capture lost records: captured + dropped != offered"
assert cap["capture_on_qps"] > 0, "capture-on pass sustained no load"
assert cap["captured"] > 0, "the recorder captured nothing"
rep = doc["replication"]
assert "threads_used" in rep, "replication is missing threads_used"
assert 1 <= rep["threads_used"] <= max(1, rep["jobs"], 1), \
    f"threads_used {rep['threads_used']} inconsistent with jobs {rep['jobs']}"
print(f"bench json ok: speedup {doc['event_queue']['speedup']:.2f}x "
      f"event queue, {rep['speedup']:.2f}x replication "
      f"at jobs={rep['jobs']} (threads_used={rep['threads_used']}), "
      f"rt gateway {rt['sustained_qps']:.0f} qps "
      f"p99 {rt['admission_p99_us']:.0f} us, "
      f"net loopback {net['sustained_qps']:.0f} qps over "
      f"{net['connections']} connections x {net['reactors']} reactors, "
      f"net latency rtt p99 {lat['rtt_p99_us']:.0f} us at "
      f"{lat['qps_target']:.0f} qps, "
      f"cluster routed {clu['sustained_qps']:.0f}/"
      f"{clu['direct_sustained_qps']:.0f} qps over {clu['backends']} "
      f"backends (added p99 {clu['added_rtt_p99_us']:.0f} us), "
      f"http_obs overhead {obs['overhead_pct']:.2f}% "
      f"({obs['scrapes']} scrapes), "
      f"capture overhead {cap['overhead_pct']:.2f}% "
      f"({cap['captured']} records)")
if doc["threads_used"] != doc["hardware_concurrency"]:
    print(f"WARNING: threads_used {doc['threads_used']} != "
          f"hardware_concurrency {doc['hardware_concurrency']} — the "
          f"parallel sections (replication, reactors) are core-limited "
          f"on this host and the numbers understate multi-core scaling",
          file=sys.stderr)
if obs["overhead_pct"] > 2.0:
    print(f"WARNING: http observability overhead {obs['overhead_pct']:.2f}% "
          f"> 2% — rerun with a longer --http-obs-duration before "
          f"concluding a regression", file=sys.stderr)
if cap["overhead_pct"] > 2.0:
    print(f"WARNING: trace capture overhead {cap['overhead_pct']:.2f}% "
          f"> 2% — rerun with a longer --replay-capture-duration before "
          f"concluding a regression", file=sys.stderr)
if rep["threads_used"] > 1 and rep["speedup"] < 1.2:
    print(f"WARNING: replication speedup {rep['speedup']:.2f}x < 1.2x "
          f"with {rep['threads_used']} threads — parallel numbers are "
          f"not meaningful on this host", file=sys.stderr)
EOF
else
  grep -q '"event_queue"' "${OUT}"
  grep -q '"replication"' "${OUT}"
  grep -q '"net_loopback"' "${OUT}"
  echo "bench json ok (python3 unavailable; grep check only)"
fi

echo "wrote ${OUT}"
