#!/usr/bin/env bash
# CTest gate: runs a reduced perf_bench pass and compares it against the
# committed BENCH_qsched.json with scripts/bench_compare.py, failing on a
# > 25% regression in the tracked rate/latency metrics. The reduced knobs
# keep the gate fast; all compared metrics are rates or latencies, so
# they are comparable across sizing. Exit 77 (CTest SKIP) when the
# benchmark binary, python3 or the committed baseline is missing.
#
# Usage: check_bench_regression.sh [path-to-perf_bench]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="${1:-${ROOT}/build/bench/perf_bench}"
BASELINE="${ROOT}/BENCH_qsched.json"

if [ ! -x "${BENCH}" ]; then
  echo "bench_regression: ${BENCH} not built; skipping" >&2
  exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_regression: python3 unavailable; skipping" >&2
  exit 77
fi
if [ ! -f "${BASELINE}" ]; then
  echo "bench_regression: no committed ${BASELINE}; skipping" >&2
  exit 77
fi

OUT="$(mktemp /tmp/bench_qsched.XXXXXX.json)"
trap 'rm -f "${OUT}"' EXIT

"${BENCH}" \
  --events=300000 --outstanding=256 \
  --fig6-period-seconds=120 \
  --replications=2 --jobs=2 --rep-period-seconds=30 \
  --rt-qps=1500 --rt-duration=1 \
  --net-duration=1 --net-latency-duration=1 \
  --http-obs-duration=1 \
  --cluster-duration=1 \
  --out="${OUT}" >/dev/null

python3 "${ROOT}/scripts/bench_compare.py" "${BASELINE}" "${OUT}"
