file(REMOVE_RECURSE
  "CMakeFiles/qsched_common.dir/flags.cc.o"
  "CMakeFiles/qsched_common.dir/flags.cc.o.d"
  "CMakeFiles/qsched_common.dir/logging.cc.o"
  "CMakeFiles/qsched_common.dir/logging.cc.o.d"
  "CMakeFiles/qsched_common.dir/rng.cc.o"
  "CMakeFiles/qsched_common.dir/rng.cc.o.d"
  "CMakeFiles/qsched_common.dir/status.cc.o"
  "CMakeFiles/qsched_common.dir/status.cc.o.d"
  "CMakeFiles/qsched_common.dir/strings.cc.o"
  "CMakeFiles/qsched_common.dir/strings.cc.o.d"
  "libqsched_common.a"
  "libqsched_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
