# Empty compiler generated dependencies file for qsched_common.
# This may be replaced when dependencies are built.
