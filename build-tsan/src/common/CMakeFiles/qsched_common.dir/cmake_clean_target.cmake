file(REMOVE_RECURSE
  "libqsched_common.a"
)
