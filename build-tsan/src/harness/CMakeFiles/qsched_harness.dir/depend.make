# Empty dependencies file for qsched_harness.
# This may be replaced when dependencies are built.
