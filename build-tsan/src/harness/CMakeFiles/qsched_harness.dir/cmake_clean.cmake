file(REMOVE_RECURSE
  "CMakeFiles/qsched_harness.dir/experiment.cc.o"
  "CMakeFiles/qsched_harness.dir/experiment.cc.o.d"
  "CMakeFiles/qsched_harness.dir/parallel.cc.o"
  "CMakeFiles/qsched_harness.dir/parallel.cc.o.d"
  "CMakeFiles/qsched_harness.dir/replication.cc.o"
  "CMakeFiles/qsched_harness.dir/replication.cc.o.d"
  "CMakeFiles/qsched_harness.dir/report.cc.o"
  "CMakeFiles/qsched_harness.dir/report.cc.o.d"
  "libqsched_harness.a"
  "libqsched_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
