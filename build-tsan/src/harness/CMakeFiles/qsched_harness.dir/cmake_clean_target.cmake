file(REMOVE_RECURSE
  "libqsched_harness.a"
)
