file(REMOVE_RECURSE
  "CMakeFiles/qsched_metrics.dir/period_collector.cc.o"
  "CMakeFiles/qsched_metrics.dir/period_collector.cc.o.d"
  "CMakeFiles/qsched_metrics.dir/trace_writer.cc.o"
  "CMakeFiles/qsched_metrics.dir/trace_writer.cc.o.d"
  "CMakeFiles/qsched_metrics.dir/workload_stats.cc.o"
  "CMakeFiles/qsched_metrics.dir/workload_stats.cc.o.d"
  "libqsched_metrics.a"
  "libqsched_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
