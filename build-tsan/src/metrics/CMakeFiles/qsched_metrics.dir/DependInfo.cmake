
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/period_collector.cc" "src/metrics/CMakeFiles/qsched_metrics.dir/period_collector.cc.o" "gcc" "src/metrics/CMakeFiles/qsched_metrics.dir/period_collector.cc.o.d"
  "/root/repo/src/metrics/trace_writer.cc" "src/metrics/CMakeFiles/qsched_metrics.dir/trace_writer.cc.o" "gcc" "src/metrics/CMakeFiles/qsched_metrics.dir/trace_writer.cc.o.d"
  "/root/repo/src/metrics/workload_stats.cc" "src/metrics/CMakeFiles/qsched_metrics.dir/workload_stats.cc.o" "gcc" "src/metrics/CMakeFiles/qsched_metrics.dir/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/scheduler/CMakeFiles/qsched_scheduler.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/qsched_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qp/CMakeFiles/qsched_qp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/qsched_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/qsched_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/qsched_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
