# Empty dependencies file for qsched_metrics.
# This may be replaced when dependencies are built.
