file(REMOVE_RECURSE
  "libqsched_metrics.a"
)
