file(REMOVE_RECURSE
  "CMakeFiles/qsched_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/qsched_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/qsched_optimizer.dir/plan.cc.o"
  "CMakeFiles/qsched_optimizer.dir/plan.cc.o.d"
  "libqsched_optimizer.a"
  "libqsched_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
