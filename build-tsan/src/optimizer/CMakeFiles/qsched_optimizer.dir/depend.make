# Empty dependencies file for qsched_optimizer.
# This may be replaced when dependencies are built.
