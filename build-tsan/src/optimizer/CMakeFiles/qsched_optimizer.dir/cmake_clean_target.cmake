file(REMOVE_RECURSE
  "libqsched_optimizer.a"
)
