file(REMOVE_RECURSE
  "libqsched_engine.a"
)
