
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/buffer_pool.cc" "src/engine/CMakeFiles/qsched_engine.dir/buffer_pool.cc.o" "gcc" "src/engine/CMakeFiles/qsched_engine.dir/buffer_pool.cc.o.d"
  "/root/repo/src/engine/clock_buffer_pool.cc" "src/engine/CMakeFiles/qsched_engine.dir/clock_buffer_pool.cc.o" "gcc" "src/engine/CMakeFiles/qsched_engine.dir/clock_buffer_pool.cc.o.d"
  "/root/repo/src/engine/execution_engine.cc" "src/engine/CMakeFiles/qsched_engine.dir/execution_engine.cc.o" "gcc" "src/engine/CMakeFiles/qsched_engine.dir/execution_engine.cc.o.d"
  "/root/repo/src/engine/resources.cc" "src/engine/CMakeFiles/qsched_engine.dir/resources.cc.o" "gcc" "src/engine/CMakeFiles/qsched_engine.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
