file(REMOVE_RECURSE
  "CMakeFiles/qsched_engine.dir/buffer_pool.cc.o"
  "CMakeFiles/qsched_engine.dir/buffer_pool.cc.o.d"
  "CMakeFiles/qsched_engine.dir/clock_buffer_pool.cc.o"
  "CMakeFiles/qsched_engine.dir/clock_buffer_pool.cc.o.d"
  "CMakeFiles/qsched_engine.dir/execution_engine.cc.o"
  "CMakeFiles/qsched_engine.dir/execution_engine.cc.o.d"
  "CMakeFiles/qsched_engine.dir/resources.cc.o"
  "CMakeFiles/qsched_engine.dir/resources.cc.o.d"
  "libqsched_engine.a"
  "libqsched_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
