# Empty dependencies file for qsched_engine.
# This may be replaced when dependencies are built.
