file(REMOVE_RECURSE
  "libqsched_obs.a"
)
