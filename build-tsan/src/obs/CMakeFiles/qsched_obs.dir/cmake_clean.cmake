file(REMOVE_RECURSE
  "CMakeFiles/qsched_obs.dir/audit.cc.o"
  "CMakeFiles/qsched_obs.dir/audit.cc.o.d"
  "CMakeFiles/qsched_obs.dir/metrics.cc.o"
  "CMakeFiles/qsched_obs.dir/metrics.cc.o.d"
  "CMakeFiles/qsched_obs.dir/span.cc.o"
  "CMakeFiles/qsched_obs.dir/span.cc.o.d"
  "libqsched_obs.a"
  "libqsched_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
