# Empty dependencies file for qsched_obs.
# This may be replaced when dependencies are built.
