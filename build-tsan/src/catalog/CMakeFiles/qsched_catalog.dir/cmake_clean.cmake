file(REMOVE_RECURSE
  "CMakeFiles/qsched_catalog.dir/schema.cc.o"
  "CMakeFiles/qsched_catalog.dir/schema.cc.o.d"
  "CMakeFiles/qsched_catalog.dir/tpcc_catalog.cc.o"
  "CMakeFiles/qsched_catalog.dir/tpcc_catalog.cc.o.d"
  "CMakeFiles/qsched_catalog.dir/tpch_catalog.cc.o"
  "CMakeFiles/qsched_catalog.dir/tpch_catalog.cc.o.d"
  "libqsched_catalog.a"
  "libqsched_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
