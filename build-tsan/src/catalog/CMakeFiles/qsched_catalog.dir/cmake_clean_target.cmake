file(REMOVE_RECURSE
  "libqsched_catalog.a"
)
