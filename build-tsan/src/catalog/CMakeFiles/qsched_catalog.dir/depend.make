# Empty dependencies file for qsched_catalog.
# This may be replaced when dependencies are built.
