file(REMOVE_RECURSE
  "CMakeFiles/qsched_qp.dir/control_table.cc.o"
  "CMakeFiles/qsched_qp.dir/control_table.cc.o.d"
  "CMakeFiles/qsched_qp.dir/governor.cc.o"
  "CMakeFiles/qsched_qp.dir/governor.cc.o.d"
  "CMakeFiles/qsched_qp.dir/interceptor.cc.o"
  "CMakeFiles/qsched_qp.dir/interceptor.cc.o.d"
  "CMakeFiles/qsched_qp.dir/qp_controller.cc.o"
  "CMakeFiles/qsched_qp.dir/qp_controller.cc.o.d"
  "libqsched_qp.a"
  "libqsched_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
