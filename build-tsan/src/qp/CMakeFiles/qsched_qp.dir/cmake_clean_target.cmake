file(REMOVE_RECURSE
  "libqsched_qp.a"
)
