# Empty dependencies file for qsched_qp.
# This may be replaced when dependencies are built.
