
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/client.cc" "src/workload/CMakeFiles/qsched_workload.dir/client.cc.o" "gcc" "src/workload/CMakeFiles/qsched_workload.dir/client.cc.o.d"
  "/root/repo/src/workload/open_loop.cc" "src/workload/CMakeFiles/qsched_workload.dir/open_loop.cc.o" "gcc" "src/workload/CMakeFiles/qsched_workload.dir/open_loop.cc.o.d"
  "/root/repo/src/workload/schedule.cc" "src/workload/CMakeFiles/qsched_workload.dir/schedule.cc.o" "gcc" "src/workload/CMakeFiles/qsched_workload.dir/schedule.cc.o.d"
  "/root/repo/src/workload/tpcc_workload.cc" "src/workload/CMakeFiles/qsched_workload.dir/tpcc_workload.cc.o" "gcc" "src/workload/CMakeFiles/qsched_workload.dir/tpcc_workload.cc.o.d"
  "/root/repo/src/workload/tpch_workload.cc" "src/workload/CMakeFiles/qsched_workload.dir/tpch_workload.cc.o" "gcc" "src/workload/CMakeFiles/qsched_workload.dir/tpch_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/engine/CMakeFiles/qsched_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/qsched_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/qsched_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
