# Empty compiler generated dependencies file for qsched_workload.
# This may be replaced when dependencies are built.
