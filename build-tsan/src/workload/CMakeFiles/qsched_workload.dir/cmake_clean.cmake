file(REMOVE_RECURSE
  "CMakeFiles/qsched_workload.dir/client.cc.o"
  "CMakeFiles/qsched_workload.dir/client.cc.o.d"
  "CMakeFiles/qsched_workload.dir/open_loop.cc.o"
  "CMakeFiles/qsched_workload.dir/open_loop.cc.o.d"
  "CMakeFiles/qsched_workload.dir/schedule.cc.o"
  "CMakeFiles/qsched_workload.dir/schedule.cc.o.d"
  "CMakeFiles/qsched_workload.dir/tpcc_workload.cc.o"
  "CMakeFiles/qsched_workload.dir/tpcc_workload.cc.o.d"
  "CMakeFiles/qsched_workload.dir/tpch_workload.cc.o"
  "CMakeFiles/qsched_workload.dir/tpch_workload.cc.o.d"
  "libqsched_workload.a"
  "libqsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
