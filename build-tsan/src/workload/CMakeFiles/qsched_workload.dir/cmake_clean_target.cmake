file(REMOVE_RECURSE
  "libqsched_workload.a"
)
