file(REMOVE_RECURSE
  "CMakeFiles/qsched_scheduler.dir/dispatcher.cc.o"
  "CMakeFiles/qsched_scheduler.dir/dispatcher.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/greedy_allocator.cc.o"
  "CMakeFiles/qsched_scheduler.dir/greedy_allocator.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/monitor.cc.o"
  "CMakeFiles/qsched_scheduler.dir/monitor.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/mpl_controller.cc.o"
  "CMakeFiles/qsched_scheduler.dir/mpl_controller.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/perf_models.cc.o"
  "CMakeFiles/qsched_scheduler.dir/perf_models.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/query_scheduler.cc.o"
  "CMakeFiles/qsched_scheduler.dir/query_scheduler.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/service_class.cc.o"
  "CMakeFiles/qsched_scheduler.dir/service_class.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/snapshot_monitor.cc.o"
  "CMakeFiles/qsched_scheduler.dir/snapshot_monitor.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/solver.cc.o"
  "CMakeFiles/qsched_scheduler.dir/solver.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/utility.cc.o"
  "CMakeFiles/qsched_scheduler.dir/utility.cc.o.d"
  "CMakeFiles/qsched_scheduler.dir/workload_detector.cc.o"
  "CMakeFiles/qsched_scheduler.dir/workload_detector.cc.o.d"
  "libqsched_scheduler.a"
  "libqsched_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
