file(REMOVE_RECURSE
  "libqsched_scheduler.a"
)
