# Empty dependencies file for qsched_scheduler.
# This may be replaced when dependencies are built.
