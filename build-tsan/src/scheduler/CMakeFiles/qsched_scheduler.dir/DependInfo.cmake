
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/dispatcher.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/dispatcher.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/dispatcher.cc.o.d"
  "/root/repo/src/scheduler/greedy_allocator.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/greedy_allocator.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/greedy_allocator.cc.o.d"
  "/root/repo/src/scheduler/monitor.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/monitor.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/monitor.cc.o.d"
  "/root/repo/src/scheduler/mpl_controller.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/mpl_controller.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/mpl_controller.cc.o.d"
  "/root/repo/src/scheduler/perf_models.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/perf_models.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/perf_models.cc.o.d"
  "/root/repo/src/scheduler/query_scheduler.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/query_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/query_scheduler.cc.o.d"
  "/root/repo/src/scheduler/service_class.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/service_class.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/service_class.cc.o.d"
  "/root/repo/src/scheduler/snapshot_monitor.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/snapshot_monitor.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/snapshot_monitor.cc.o.d"
  "/root/repo/src/scheduler/solver.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/solver.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/solver.cc.o.d"
  "/root/repo/src/scheduler/utility.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/utility.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/utility.cc.o.d"
  "/root/repo/src/scheduler/workload_detector.cc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/workload_detector.cc.o" "gcc" "src/scheduler/CMakeFiles/qsched_scheduler.dir/workload_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qp/CMakeFiles/qsched_qp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/qsched_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/qsched_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/qsched_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/qsched_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
