# Empty compiler generated dependencies file for qsched_sim.
# This may be replaced when dependencies are built.
