file(REMOVE_RECURSE
  "libqsched_sim.a"
)
