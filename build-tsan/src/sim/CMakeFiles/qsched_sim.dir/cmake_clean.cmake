file(REMOVE_RECURSE
  "CMakeFiles/qsched_sim.dir/simulator.cc.o"
  "CMakeFiles/qsched_sim.dir/simulator.cc.o.d"
  "CMakeFiles/qsched_sim.dir/stats.cc.o"
  "CMakeFiles/qsched_sim.dir/stats.cc.o.d"
  "libqsched_sim.a"
  "libqsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
