# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(perf_bench_smoke "/root/repo/build-tsan/bench/perf_bench" "--events=20000" "--outstanding=64" "--fig6-period-seconds=20" "--replications=2" "--jobs=2" "--rep-period-seconds=20")
set_tests_properties(perf_bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
