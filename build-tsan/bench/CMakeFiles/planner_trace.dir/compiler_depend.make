# Empty compiler generated dependencies file for planner_trace.
# This may be replaced when dependencies are built.
