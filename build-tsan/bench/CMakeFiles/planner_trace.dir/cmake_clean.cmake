file(REMOVE_RECURSE
  "CMakeFiles/planner_trace.dir/planner_trace.cc.o"
  "CMakeFiles/planner_trace.dir/planner_trace.cc.o.d"
  "planner_trace"
  "planner_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
