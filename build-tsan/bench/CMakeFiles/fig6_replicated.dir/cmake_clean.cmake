file(REMOVE_RECURSE
  "CMakeFiles/fig6_replicated.dir/fig6_replicated.cc.o"
  "CMakeFiles/fig6_replicated.dir/fig6_replicated.cc.o.d"
  "fig6_replicated"
  "fig6_replicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_replicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
