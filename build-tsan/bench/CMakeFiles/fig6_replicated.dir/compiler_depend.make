# Empty compiler generated dependencies file for fig6_replicated.
# This may be replaced when dependencies are built.
