
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_qs_control.cc" "bench/CMakeFiles/fig6_qs_control.dir/fig6_qs_control.cc.o" "gcc" "bench/CMakeFiles/fig6_qs_control.dir/fig6_qs_control.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/harness/CMakeFiles/qsched_harness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/metrics/CMakeFiles/qsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scheduler/CMakeFiles/qsched_scheduler.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qp/CMakeFiles/qsched_qp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/qsched_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/qsched_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/qsched_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/qsched_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
