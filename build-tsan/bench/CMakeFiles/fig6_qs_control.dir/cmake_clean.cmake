file(REMOVE_RECURSE
  "CMakeFiles/fig6_qs_control.dir/fig6_qs_control.cc.o"
  "CMakeFiles/fig6_qs_control.dir/fig6_qs_control.cc.o.d"
  "fig6_qs_control"
  "fig6_qs_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_qs_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
