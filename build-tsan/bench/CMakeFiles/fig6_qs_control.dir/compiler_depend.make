# Empty compiler generated dependencies file for fig6_qs_control.
# This may be replaced when dependencies are built.
