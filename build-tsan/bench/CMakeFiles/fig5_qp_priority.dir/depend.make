# Empty dependencies file for fig5_qp_priority.
# This may be replaced when dependencies are built.
