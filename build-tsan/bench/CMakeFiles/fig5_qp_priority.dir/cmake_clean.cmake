file(REMOVE_RECURSE
  "CMakeFiles/fig5_qp_priority.dir/fig5_qp_priority.cc.o"
  "CMakeFiles/fig5_qp_priority.dir/fig5_qp_priority.cc.o.d"
  "fig5_qp_priority"
  "fig5_qp_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_qp_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
