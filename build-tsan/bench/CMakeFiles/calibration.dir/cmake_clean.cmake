file(REMOVE_RECURSE
  "CMakeFiles/calibration.dir/calibration.cc.o"
  "CMakeFiles/calibration.dir/calibration.cc.o.d"
  "calibration"
  "calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
