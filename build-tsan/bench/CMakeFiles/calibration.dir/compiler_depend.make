# Empty compiler generated dependencies file for calibration.
# This may be replaced when dependencies are built.
