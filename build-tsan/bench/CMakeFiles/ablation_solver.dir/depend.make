# Empty dependencies file for ablation_solver.
# This may be replaced when dependencies are built.
