file(REMOVE_RECURSE
  "CMakeFiles/ablation_solver.dir/ablation_solver.cc.o"
  "CMakeFiles/ablation_solver.dir/ablation_solver.cc.o.d"
  "ablation_solver"
  "ablation_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
