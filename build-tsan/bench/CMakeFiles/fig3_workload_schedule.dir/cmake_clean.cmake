file(REMOVE_RECURSE
  "CMakeFiles/fig3_workload_schedule.dir/fig3_workload_schedule.cc.o"
  "CMakeFiles/fig3_workload_schedule.dir/fig3_workload_schedule.cc.o.d"
  "fig3_workload_schedule"
  "fig3_workload_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_workload_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
