# Empty compiler generated dependencies file for fig3_workload_schedule.
# This may be replaced when dependencies are built.
