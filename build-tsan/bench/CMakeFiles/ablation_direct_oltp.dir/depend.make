# Empty dependencies file for ablation_direct_oltp.
# This may be replaced when dependencies are built.
