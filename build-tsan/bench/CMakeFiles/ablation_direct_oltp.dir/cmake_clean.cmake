file(REMOVE_RECURSE
  "CMakeFiles/ablation_direct_oltp.dir/ablation_direct_oltp.cc.o"
  "CMakeFiles/ablation_direct_oltp.dir/ablation_direct_oltp.cc.o.d"
  "ablation_direct_oltp"
  "ablation_direct_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direct_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
