file(REMOVE_RECURSE
  "CMakeFiles/ext_workload_detection.dir/ext_workload_detection.cc.o"
  "CMakeFiles/ext_workload_detection.dir/ext_workload_detection.cc.o.d"
  "ext_workload_detection"
  "ext_workload_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workload_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
