# Empty compiler generated dependencies file for ext_workload_detection.
# This may be replaced when dependencies are built.
