file(REMOVE_RECURSE
  "CMakeFiles/system_cost_limit_curve.dir/system_cost_limit_curve.cc.o"
  "CMakeFiles/system_cost_limit_curve.dir/system_cost_limit_curve.cc.o.d"
  "system_cost_limit_curve"
  "system_cost_limit_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_cost_limit_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
