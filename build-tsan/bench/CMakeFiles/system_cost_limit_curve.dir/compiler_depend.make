# Empty compiler generated dependencies file for system_cost_limit_curve.
# This may be replaced when dependencies are built.
