file(REMOVE_RECURSE
  "CMakeFiles/ablation_allocators.dir/ablation_allocators.cc.o"
  "CMakeFiles/ablation_allocators.dir/ablation_allocators.cc.o.d"
  "ablation_allocators"
  "ablation_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
