file(REMOVE_RECURSE
  "CMakeFiles/fig7_cost_limits.dir/fig7_cost_limits.cc.o"
  "CMakeFiles/fig7_cost_limits.dir/fig7_cost_limits.cc.o.d"
  "fig7_cost_limits"
  "fig7_cost_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cost_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
