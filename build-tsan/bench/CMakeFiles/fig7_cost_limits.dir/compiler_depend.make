# Empty compiler generated dependencies file for fig7_cost_limits.
# This may be replaced when dependencies are built.
