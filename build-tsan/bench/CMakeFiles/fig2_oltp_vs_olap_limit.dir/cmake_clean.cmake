file(REMOVE_RECURSE
  "CMakeFiles/fig2_oltp_vs_olap_limit.dir/fig2_oltp_vs_olap_limit.cc.o"
  "CMakeFiles/fig2_oltp_vs_olap_limit.dir/fig2_oltp_vs_olap_limit.cc.o.d"
  "fig2_oltp_vs_olap_limit"
  "fig2_oltp_vs_olap_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_oltp_vs_olap_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
