# Empty compiler generated dependencies file for fig2_oltp_vs_olap_limit.
# This may be replaced when dependencies are built.
