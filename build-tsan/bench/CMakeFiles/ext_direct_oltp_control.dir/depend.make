# Empty dependencies file for ext_direct_oltp_control.
# This may be replaced when dependencies are built.
