file(REMOVE_RECURSE
  "CMakeFiles/ext_direct_oltp_control.dir/ext_direct_oltp_control.cc.o"
  "CMakeFiles/ext_direct_oltp_control.dir/ext_direct_oltp_control.cc.o.d"
  "ext_direct_oltp_control"
  "ext_direct_oltp_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_direct_oltp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
