# Empty compiler generated dependencies file for perf_bench.
# This may be replaced when dependencies are built.
