file(REMOVE_RECURSE
  "CMakeFiles/perf_bench.dir/perf_bench.cc.o"
  "CMakeFiles/perf_bench.dir/perf_bench.cc.o.d"
  "perf_bench"
  "perf_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
