file(REMOVE_RECURSE
  "CMakeFiles/ext_open_loop.dir/ext_open_loop.cc.o"
  "CMakeFiles/ext_open_loop.dir/ext_open_loop.cc.o.d"
  "ext_open_loop"
  "ext_open_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_open_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
