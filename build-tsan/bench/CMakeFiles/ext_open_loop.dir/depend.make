# Empty dependencies file for ext_open_loop.
# This may be replaced when dependencies are built.
