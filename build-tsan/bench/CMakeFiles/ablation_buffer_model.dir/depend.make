# Empty dependencies file for ablation_buffer_model.
# This may be replaced when dependencies are built.
