file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_model.dir/ablation_buffer_model.cc.o"
  "CMakeFiles/ablation_buffer_model.dir/ablation_buffer_model.cc.o.d"
  "ablation_buffer_model"
  "ablation_buffer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
