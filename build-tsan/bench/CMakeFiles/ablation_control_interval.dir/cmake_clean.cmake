file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_interval.dir/ablation_control_interval.cc.o"
  "CMakeFiles/ablation_control_interval.dir/ablation_control_interval.cc.o.d"
  "ablation_control_interval"
  "ablation_control_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
