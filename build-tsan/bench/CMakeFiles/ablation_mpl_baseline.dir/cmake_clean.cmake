file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpl_baseline.dir/ablation_mpl_baseline.cc.o"
  "CMakeFiles/ablation_mpl_baseline.dir/ablation_mpl_baseline.cc.o.d"
  "ablation_mpl_baseline"
  "ablation_mpl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
