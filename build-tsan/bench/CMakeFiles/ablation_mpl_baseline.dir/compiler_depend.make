# Empty compiler generated dependencies file for ablation_mpl_baseline.
# This may be replaced when dependencies are built.
