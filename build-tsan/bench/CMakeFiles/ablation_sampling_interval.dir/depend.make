# Empty dependencies file for ablation_sampling_interval.
# This may be replaced when dependencies are built.
