file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling_interval.dir/ablation_sampling_interval.cc.o"
  "CMakeFiles/ablation_sampling_interval.dir/ablation_sampling_interval.cc.o.d"
  "ablation_sampling_interval"
  "ablation_sampling_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
