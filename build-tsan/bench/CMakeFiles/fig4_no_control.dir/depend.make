# Empty dependencies file for fig4_no_control.
# This may be replaced when dependencies are built.
