file(REMOVE_RECURSE
  "CMakeFiles/fig4_no_control.dir/fig4_no_control.cc.o"
  "CMakeFiles/fig4_no_control.dir/fig4_no_control.cc.o.d"
  "fig4_no_control"
  "fig4_no_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_no_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
