# Empty dependencies file for qsched_tests.
# This may be replaced when dependencies are built.
