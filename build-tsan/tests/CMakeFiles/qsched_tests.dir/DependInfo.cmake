
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/qsched_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/clock_buffer_pool_test.cc" "tests/CMakeFiles/qsched_tests.dir/clock_buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/clock_buffer_pool_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/qsched_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dispatcher_test.cc" "tests/CMakeFiles/qsched_tests.dir/dispatcher_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/dispatcher_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/qsched_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/qsched_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/qsched_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/governor_test.cc" "tests/CMakeFiles/qsched_tests.dir/governor_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/governor_test.cc.o.d"
  "/root/repo/tests/greedy_allocator_test.cc" "tests/CMakeFiles/qsched_tests.dir/greedy_allocator_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/greedy_allocator_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/qsched_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/qsched_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/qsched_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/obs_test.cc" "tests/CMakeFiles/qsched_tests.dir/obs_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/obs_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/qsched_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/qp_test.cc" "tests/CMakeFiles/qsched_tests.dir/qp_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/qp_test.cc.o.d"
  "/root/repo/tests/query_scheduler_test.cc" "tests/CMakeFiles/qsched_tests.dir/query_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/query_scheduler_test.cc.o.d"
  "/root/repo/tests/scheduler_test.cc" "tests/CMakeFiles/qsched_tests.dir/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/scheduler_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/qsched_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/template_test.cc" "tests/CMakeFiles/qsched_tests.dir/template_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/template_test.cc.o.d"
  "/root/repo/tests/workload_detector_test.cc" "tests/CMakeFiles/qsched_tests.dir/workload_detector_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/workload_detector_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/qsched_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/qsched_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/harness/CMakeFiles/qsched_harness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/metrics/CMakeFiles/qsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scheduler/CMakeFiles/qsched_scheduler.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qp/CMakeFiles/qsched_qp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/qsched_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/qsched_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/qsched_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/qsched_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/qsched_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/qsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/qsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
