# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/qsched_tests[1]_include.cmake")
add_test(parallel_replication_tsan "/root/repo/build-tsan/tests/qsched_tests" "--gtest_filter=ParallelReplicationTest.*:ParallelForTest.*:ThreadPoolTest.*")
set_tests_properties(parallel_replication_tsan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
