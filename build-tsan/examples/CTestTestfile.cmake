# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(experiment_cli_smoke "/root/repo/scripts/smoke_experiment_cli.sh" "/root/repo/build-tsan/examples/experiment_cli")
set_tests_properties(experiment_cli_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
