file(REMOVE_RECURSE
  "CMakeFiles/whatif_planner.dir/whatif_planner.cpp.o"
  "CMakeFiles/whatif_planner.dir/whatif_planner.cpp.o.d"
  "whatif_planner"
  "whatif_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
