# Empty dependencies file for whatif_planner.
# This may be replaced when dependencies are built.
