file(REMOVE_RECURSE
  "CMakeFiles/slo_differentiation.dir/slo_differentiation.cpp.o"
  "CMakeFiles/slo_differentiation.dir/slo_differentiation.cpp.o.d"
  "slo_differentiation"
  "slo_differentiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_differentiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
