# Empty compiler generated dependencies file for slo_differentiation.
# This may be replaced when dependencies are built.
