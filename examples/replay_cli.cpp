// Workload capture & replay CLI: inspect captured traces, replay them
// against a live endpoint at a speed multiplier, and shadow-evaluate
// what-if plans over them on the DES stack.
//
// Capture-info: parse a trace (plus rotation continuations) and print
// its header, record accounting, per-template histogram and — when the
// capturing run shut down cleanly — the live-run summary.
//
//   replay_cli --mode=capture-info --trace=PATH
//
// Replay: play the trace against a live server through pipelined
// net::Clients, preserving the recorded inter-arrival gaps scaled by
// --speed, then drain and reconcile. Exits 2 when conservation is
// violated (a lost or duplicated query).
//
//   replay_cli --mode=replay --trace=PATH --target=HOST:PORT --speed=2
//
// Whatif: feed the captured interval into the DES-backed scheduler
// stack once per candidate plan and report predicted per-class
// attainment and total utility side by side with the live run's
// measured values. Bit-deterministic at any --jobs.
//
//   replay_cli --mode=whatif --trace=PATH \
//       --plans=base,interval=5,limit=300000+interval=5 --jobs=4
//
// Shared options:
//   --trace=PATH         trace file written by --capture-trace (required)
//   --seed=N             seed for regenerating query resource demands
//                        from captured template ids (42)
//   --tpch-scale=X       TPC-H scale factor for OLAP regeneration (0.1)
//
// Replay options:
//   --target=HOST:PORT   server address (127.0.0.1:4750)
//   --speed=X            speed multiplier over recorded gaps (1.0)
//   --connections=N      client connections, one thread each (2)
//   --max-outstanding=N  pipeline depth bound per connection (256)
//   --metrics-out=PATH   Prometheus text exposition of the registry
//
// Whatif options:
//   --plans=SPEC         comma-separated candidates, each '+'-joined
//                        tokens: base | interval=S | greedy | utility |
//                        step=F | limit=X | olap=X  ("base")
//   --jobs=N             candidate evaluation threads (0 = all cores)
//   --control-interval=S base control interval when the trace has no
//                        summary (15)
//   --cost-limit=X       base system cost limit when the trace has no
//                        summary (300000)
//   --report-interval=S  attainment bucketing interval (0 = control
//                        interval)
//   --out=PATH           also write the report to PATH

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "common/flags.h"
#include "obs/telemetry.h"
#include "replay/replayer.h"
#include "replay/shadow_planner.h"
#include "replay/template_codec.h"
#include "replay/trace_format.h"
#include "scheduler/query_scheduler.h"

namespace {

bool ParseTarget(const std::string& target, std::string* host,
                 uint16_t* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    return false;
  }
  *host = target.substr(0, colon);
  try {
    const int parsed = std::stoi(target.substr(colon + 1));
    if (parsed <= 0 || parsed > 65535) return false;
    *port = static_cast<uint16_t>(parsed);
  } catch (...) {
    return false;
  }
  return true;
}

qsched::Result<qsched::replay::TraceReadResult> LoadTrace(
    const qsched::FlagParser& flags) {
  const std::string path = flags.GetString("trace", "");
  if (path.empty()) {
    return qsched::Status::InvalidArgument("--trace=PATH is required");
  }
  return qsched::replay::ReadTraceChain(path);
}

int RunCaptureInfo(const qsched::FlagParser& flags) {
  qsched::Result<qsched::replay::TraceReadResult> loaded =
      LoadTrace(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const qsched::replay::TraceReadResult& trace = loaded.ValueOrDie();
  std::printf("trace %s\n", flags.GetString("trace", "").c_str());
  std::printf(
      "  version %u, time_scale %.1f, capture seed %llu\n",
      trace.header.version, trace.header.time_scale,
      static_cast<unsigned long long>(trace.header.seed));
  double span_s = 0.0;
  uint64_t lo = 0, hi = 0;
  if (!trace.records.empty()) {
    lo = trace.records.front().arrival_ns;
    hi = lo;
    for (const qsched::replay::TraceRecord& r : trace.records) {
      if (r.arrival_ns < lo) lo = r.arrival_ns;
      if (r.arrival_ns > hi) hi = r.arrival_ns;
    }
    span_s = static_cast<double>(hi - lo) / 1e9;
  }
  std::printf(
      "  records %zu over %.2f wall s (%.1f/s), segments ok %llu "
      "corrupt %llu, bytes %llu\n",
      trace.records.size(), span_s,
      span_s > 0.0 ? static_cast<double>(trace.records.size()) / span_s
                   : 0.0,
      static_cast<unsigned long long>(trace.segments_ok),
      static_cast<unsigned long long>(trace.segments_corrupt),
      static_cast<unsigned long long>(trace.bytes_read));

  qsched::workload::TpchWorkloadParams tpch;
  tpch.scale_factor = flags.GetDouble("tpch-scale", 0.1);
  qsched::replay::TemplateCodec codec(
      tpch, qsched::workload::TpccWorkloadParams(),
      static_cast<uint64_t>(flags.GetInt("seed", 42)));
  std::map<uint16_t, uint64_t> by_template;
  std::map<uint16_t, uint64_t> by_class;
  for (const qsched::replay::TraceRecord& r : trace.records) {
    ++by_template[r.template_id];
    ++by_class[r.class_id];
  }
  for (const auto& [class_id, count] : by_class) {
    std::printf("  class %u: %llu records\n",
                static_cast<unsigned>(class_id),
                static_cast<unsigned long long>(count));
  }
  for (const auto& [template_id, count] : by_template) {
    std::printf("  template %-12s (%#06x): %llu\n",
                codec.TemplateName(template_id).c_str(),
                static_cast<unsigned>(template_id),
                static_cast<unsigned long long>(count));
  }
  if (trace.has_summary) {
    const qsched::replay::TraceSummary& s = trace.summary;
    std::printf(
        "  live summary: interval %.1f s, cost limit %.0f, allocator %s, "
        "total utility %.4f\n",
        s.control_interval_seconds, s.system_cost_limit,
        s.allocator == 1 ? "greedy" : "utility-search", s.total_utility);
    for (const qsched::replay::TraceSummaryClass& c : s.classes) {
      std::printf(
          "    class %u: measured %.4f, attainment %.2f, limit %.0f\n",
          c.class_id, c.measured, c.attainment, c.cost_limit);
    }
  } else {
    std::printf("  no live summary (capture did not shut down cleanly)\n");
  }
  return 0;
}

int RunReplay(const qsched::FlagParser& flags) {
  qsched::Result<qsched::replay::TraceReadResult> loaded =
      LoadTrace(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const qsched::replay::TraceReadResult& trace = loaded.ValueOrDie();
  if (trace.records.empty()) {
    std::fprintf(stderr, "trace has no records\n");
    return 1;
  }

  qsched::replay::ReplayOptions options;
  const std::string target =
      flags.GetString("target", "127.0.0.1:4750");
  if (!ParseTarget(target, &options.host, &options.port)) {
    std::fprintf(stderr, "malformed --target=%s\n", target.c_str());
    return 1;
  }
  options.speed = flags.GetDouble("speed", 1.0);
  options.connections = static_cast<int>(flags.GetInt("connections", 2));
  options.max_outstanding =
      static_cast<int>(flags.GetInt("max-outstanding", 256));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.tpch.scale_factor = flags.GetDouble("tpch-scale", 0.1);

  qsched::obs::Telemetry telemetry;
  qsched::replay::Replayer replayer(trace, options, &telemetry);
  std::printf("replaying %zu records to %s at %.2fx over %d connections\n",
              trace.records.size(), target.c_str(), options.speed,
              options.connections);
  qsched::Result<qsched::replay::ReplayReport> ran = replayer.Run();
  if (!ran.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 ran.status().ToString().c_str());
    return 1;
  }
  const qsched::replay::ReplayReport& report = ran.ValueOrDie();
  const qsched::obs::Histogram* rtt =
      telemetry.registry.GetHistogram("qsched_replay_rtt_seconds");
  std::printf(
      "REPLAY seed=%llu speed=%.2f offered=%llu accepted=%llu "
      "rejected=%llu completed=%llu lost=%llu unmatched=%llu "
      "feed=%.2f drain=%.2f lag_ms=%.2f rtt_p50_us=%.0f rtt_p99_us=%.0f\n",
      static_cast<unsigned long long>(options.seed), options.speed,
      static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.accepted),
      static_cast<unsigned long long>(report.rejected()),
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.lost),
      static_cast<unsigned long long>(report.unmatched),
      report.feed_seconds, report.drain_seconds,
      report.mean_lag_seconds * 1e3, rtt->Quantile(0.5) * 1e6,
      rtt->Quantile(0.99) * 1e6);

  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (out) {
      telemetry.registry.WritePrometheus(out);
      std::printf("wrote %s (%zu metrics)\n", metrics_out.c_str(),
                  telemetry.registry.size());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
    }
  }

  if (!report.conserved()) {
    std::fprintf(stderr, "CONSERVATION VIOLATION (see REPLAY line)\n");
    return 2;
  }
  return 0;
}

int RunWhatif(const qsched::FlagParser& flags) {
  qsched::Result<qsched::replay::TraceReadResult> loaded =
      LoadTrace(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const qsched::replay::TraceReadResult& trace = loaded.ValueOrDie();
  if (trace.records.empty()) {
    std::fprintf(stderr, "trace has no records\n");
    return 1;
  }

  qsched::replay::ShadowPlannerOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.tpch.scale_factor = flags.GetDouble("tpch-scale", 0.1);
  options.report_interval_seconds =
      flags.GetDouble("report-interval", 0.0);
  // The base config mirrors the capture-side scheduler so "base"
  // candidates reproduce the live setup; a summary-less trace falls back
  // to the flags.
  if (trace.has_summary) {
    options.base.control_interval_seconds =
        trace.summary.control_interval_seconds;
    options.base.system_cost_limit = trace.summary.system_cost_limit;
    options.base.allocator =
        trace.summary.allocator == 1
            ? qsched::sched::QuerySchedulerConfig::Allocator::kGreedyAuction
            : qsched::sched::QuerySchedulerConfig::Allocator::kUtilitySearch;
  } else {
    options.base.control_interval_seconds =
        flags.GetDouble("control-interval", 15.0);
    options.base.system_cost_limit =
        flags.GetDouble("cost-limit", 300000.0);
  }

  qsched::replay::ShadowPlanner planner(trace, options);
  qsched::Result<std::vector<qsched::replay::PlanCandidate>> parsed =
      qsched::replay::ParsePlanCandidates(
          flags.GetString("plans", "base"), options.base,
          planner.classes());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const std::vector<qsched::replay::PlanCandidate>& candidates =
      parsed.ValueOrDie();
  const int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  std::printf("whatif: %zu records, %zu candidate plans, jobs=%d\n",
              trace.records.size(), candidates.size(), jobs);
  std::fflush(stdout);

  const std::vector<qsched::replay::ShadowOutcome> outcomes =
      planner.Evaluate(candidates, jobs);
  qsched::replay::ShadowOutcome live;
  const bool has_live = planner.has_live();
  if (has_live) live = planner.LiveOutcome();
  const std::string report = qsched::replay::ShadowPlanner::FormatReport(
      has_live ? &live : nullptr, outcomes);
  std::fputs(report.c_str(), stdout);

  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << report;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.Has("help")) {
    std::printf(
        "usage: replay_cli --mode=capture-info --trace=PATH\n"
        "       replay_cli --mode=replay --trace=PATH "
        "--target=HOST:PORT [--speed=X]\n"
        "       replay_cli --mode=whatif --trace=PATH "
        "[--plans=SPEC] [--jobs=N]\n");
    return 0;
  }
  const std::string mode = flags.GetString("mode", "capture-info");
  if (mode == "capture-info") return RunCaptureInfo(flags);
  if (mode == "replay") return RunReplay(flags);
  if (mode == "whatif") return RunWhatif(flags);
  std::fprintf(stderr,
               "unknown --mode=%s (capture-info | replay | whatif)\n",
               mode.c_str());
  return 1;
}
