// Quickstart: run the paper's mixed workload (two TPC-H-like OLAP
// classes + one TPC-C-like OLTP class) under the Query Scheduler and
// print per-period SLO attainment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace qsched;

  // 1. Describe the experiment. Defaults reproduce the paper's testbed:
  //    a 2-CPU / 17-disk engine, TPC-H at SF 0.5, TPC-C at 50 warehouses,
  //    a 300K-timeron system cost limit, and the Figure-3 intensity
  //    schedule. Everything is overridable.
  harness::ExperimentConfig config;
  config.seed = 7;
  config.period_seconds = 300.0;  // compress the paper's 80-min periods

  // 2. Run it under the adaptive controller.
  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kQueryScheduler);

  // 3. Inspect the outcome.
  std::printf("Query Scheduler on the paper's mixed workload\n");
  std::printf("period  class1_vel  class2_vel  class3_resp  class3_limit\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %10.3f  %10.3f  %10.3fs  %11.0f\n", p + 1,
                result.velocity_series.at(1)[p],
                result.velocity_series.at(2)[p],
                result.response_series.at(3)[p],
                result.period_mean_limits.at(3)[p]);
  }
  std::printf("\nSLO attainment (periods meeting goal):\n");
  std::printf("  class 1 (OLAP, velocity >= 0.4):  %d/%d\n",
              result.periods_meeting_goal.at(1), result.num_periods);
  std::printf("  class 2 (OLAP, velocity >= 0.6):  %d/%d\n",
              result.periods_meeting_goal.at(2), result.num_periods);
  std::printf("  class 3 (OLTP, response <= .25s): %d/%d\n",
              result.periods_meeting_goal.at(3), result.num_periods);
  std::printf("engine: cpu %.0f%% busy, disks %.0f%% busy, %llu queries\n",
              100.0 * result.cpu_utilization,
              100.0 * result.disk_utilization,
              static_cast<unsigned long long>(
                  result.engine_queries_completed));
  return 0;
}
