// What-if planning with the library's model layer (no simulation): given
// measured per-class performance under the current plan, ask the
// Performance Solver what it would do — the same building blocks the
// online Scheduling Planner uses, exposed for offline capacity planning.
#include <cstdio>

#include "scheduler/perf_models.h"
#include "scheduler/service_class.h"
#include "scheduler/solver.h"

int main() {
  using namespace qsched::sched;

  ServiceClassSet classes = MakePaperClasses();
  OltpResponseModel oltp_model;  // s fitted offline from Fig. 2 data

  std::printf("What-if: proposed cost limits for observed states "
              "(total 300K timerons)\n");
  std::printf("%-44s  %8s %8s %8s\n", "observed (v1, v2, oltp_resp)",
              "c1", "c2", "c3");

  struct Scenario {
    const char* label;
    double v1, v2, t3;
  };
  const Scenario scenarios[] = {
      {"quiet afternoon (all goals met easily)", 0.90, 0.95, 0.12},
      {"OLTP rush (class 3 violating)", 0.70, 0.80, 0.45},
      {"analytics crunch (OLAP starving)", 0.15, 0.25, 0.10},
      {"everything on fire (all violating)", 0.20, 0.30, 0.50},
  };

  PerformanceSolver solver;
  for (const Scenario& s : scenarios) {
    SolverInput input;
    input.total_cost_limit = 300000.0;
    input.oltp_model = &oltp_model;
    input.classes = {
        {classes.Find(1), s.v1, 100000.0, false},
        {classes.Find(2), s.v2, 100000.0, false},
        {classes.Find(3), s.t3, 100000.0, false},
    };
    SchedulingPlan plan = solver.Solve(input);
    std::printf("%-44s  %8.0f %8.0f %8.0f\n", s.label, plan.LimitFor(1),
                plan.LimitFor(2), plan.LimitFor(3));
  }

  std::printf("\nmodel predictions for the OLTP class "
              "(s = %.2g s/timeron):\n", oltp_model.slope());
  for (double limit : {100000.0, 200000.0, 300000.0}) {
    std::printf("  OLAP total %6.0f -> predicted OLTP response %.3f s\n",
                limit, oltp_model.Predict(0.15, 100000.0, limit));
  }
  return 0;
}
