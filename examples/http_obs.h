// Shared --http-port wiring for the serve-style CLIs (rt_cli, net_cli):
// starts the embedded observability HTTP server against the live
// registry and gateway, registering GET /metrics, /varz, /healthz and
// /statusz. Returns nullptr when the flag is absent or startup failed
// (already reported on stderr); the caller keeps the returned server
// alive for the whole run and Stop()s it after runtime shutdown.

#ifndef QSCHED_EXAMPLES_HTTP_OBS_H_
#define QSCHED_EXAMPLES_HTTP_OBS_H_

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/flags.h"
#include "harness/status_page.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"

namespace qsched_examples {

inline std::unique_ptr<qsched::obs::HttpServer> MaybeStartHttpObs(
    const qsched::FlagParser& flags, qsched::rt::Gateway* gateway,
    qsched::obs::Telemetry* telemetry, const std::string& title) {
  if (!flags.Has("http-port")) return nullptr;

  qsched::obs::HttpServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("http-port", 0));
  auto http = std::make_unique<qsched::obs::HttpServer>(options);

  qsched::obs::InstallRegistryHandlers(http.get(), &telemetry->registry);
  qsched::obs::InstallHealthHandler(http.get(), [gateway] {
    return std::string(
        qsched::rt::GatewayHealthToString(gateway->health()));
  });
  const auto started_at = std::chrono::steady_clock::now();
  http->AddHandler("/statusz", [gateway, telemetry, title, started_at] {
    qsched::harness::StatusPageInfo info;
    info.title = title;
    info.health =
        qsched::rt::GatewayHealthToString(gateway->health());
    info.accepted = gateway->accepted();
    info.rejected = gateway->rejected();
    info.completed = gateway->completed();
    info.queue_depth = gateway->queue_depth();
    info.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at)
            .count();
    return qsched::obs::HttpResponse{
        200, "text/html; charset=utf-8",
        qsched::harness::RenderStatusPage(info, telemetry)};
  });

  qsched::Status status = http->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "http server start failed: %s\n",
                 status.ToString().c_str());
    return nullptr;
  }
  std::printf("http observability on 127.0.0.1:%u "
              "(/metrics /varz /healthz /statusz)\n",
              static_cast<unsigned>(http->port()));
  std::fflush(stdout);
  const std::string port_file = flags.GetString("http-port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << http->port() << "\n";
  }
  return http;
}

}  // namespace qsched_examples

#endif  // QSCHED_EXAMPLES_HTTP_OBS_H_
