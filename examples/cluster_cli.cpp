// Cluster mode CLI: the SLO-aware router in front of N qsched backends.
//
// Route: binds a net::Server front socket speaking the same v1/v2 wire
// protocol as every backend, and fans SUBMITs over the --backends list
// with least-loaded, attainment-deficit-weighted scoring, health
// probing, circuit breaking and failover (DESIGN.md §12). Clients point
// net_cli --mode=netload (or any net::Client) at the router exactly as
// they would at a single backend.
//
//   cluster_cli --mode=route --backends=127.0.0.1:4750,127.0.0.1:4751 \
//               --port=4700 --duration=10
//
// Options:
//   --backends=H:P,H:P,...  backend addresses (required)
//   --port=N              front TCP port (0 = ephemeral, printed +
//                         --port-file)
//   --port-file=PATH      write the bound front port as a single line
//   --duration=SECONDS    stay up this long (0 = until SIGINT/SIGTERM)
//   --max-connections=N   front connection cap (64)
//   --reactors=N          front reactor threads (0 = auto)
//   --max-attempts=N      placements tried per query before
//                         REJECTED{BACKEND_UNAVAILABLE} (3)
//   --probe-interval=S    PING+STATS cadence per backend (0.25)
//   --probe-timeout=S     unanswered probe = one failure (1.0)
//   --connect-timeout=S   per-TCP-connect bound (1.0)
//   --eject-after=N       consecutive failures ejecting a backend (3)
//   --attainment-weight=X SLO-deficit weight in the routing score (4)
//   --seed=N              backoff jitter seed (42)
//   --capture-trace=PATH  record every routed query to a replay trace
//                         (see replay_cli); no live summary is appended
//                         — the router has no scheduler of its own
//   --capture-rotate-mb=N rotate the trace above N MB (0 = never)
//   --capture-buffer=N    per-producer capture buffer records (8192)
//   --time-scale=X        model-seconds-per-wall-second stamp for the
//                         captured trace header (60, matching the
//                         backends' serve default)
//   --metrics-out=PATH    Prometheus text exposition at exit
//   --http-port=N         observability HTTP server: /metrics, /varz,
//                         /healthz, /statusz with the backend table
//                         (0 = ephemeral; omit the flag to disable)
//   --http-port-file=PATH write the bound HTTP port as a single line
//
// Exits 0 on a clean run, 2 when the conservation identity
// (offered == accepted + rejected) is violated — a lost or
// double-counted query.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capture.h"
#include "cluster/router.h"
#include "common/flags.h"
#include "net/server.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool ParseBackends(const std::string& list,
                   std::vector<qsched::cluster::BackendAddress>* out) {
  size_t start = 0;
  while (start < list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const size_t colon = token.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= token.size()) {
      return false;
    }
    qsched::cluster::BackendAddress address;
    address.host = token.substr(0, colon);
    try {
      const int parsed = std::stoi(token.substr(colon + 1));
      if (parsed <= 0 || parsed > 65535) return false;
      address.port = static_cast<uint16_t>(parsed);
    } catch (...) {
      return false;
    }
    out->push_back(address);
  }
  return !out->empty();
}

int RunRoute(const qsched::FlagParser& flags) {
  std::vector<qsched::cluster::BackendAddress> backends;
  if (!ParseBackends(flags.GetString("backends", ""), &backends)) {
    std::fprintf(stderr,
                 "--backends=HOST:PORT[,HOST:PORT...] is required\n");
    return 1;
  }
  const double duration = flags.GetDouble("duration", 0.0);

  qsched::obs::Telemetry telemetry;
  qsched::cluster::RouterOptions options;
  options.max_attempts =
      static_cast<int>(flags.GetInt("max-attempts", 3));
  options.tuning.probe_interval_seconds =
      flags.GetDouble("probe-interval", 0.25);
  options.tuning.probe_timeout_seconds =
      flags.GetDouble("probe-timeout", 1.0);
  options.tuning.connect_timeout_seconds =
      flags.GetDouble("connect-timeout", 1.0);
  options.tuning.eject_after_failures =
      static_cast<int>(flags.GetInt("eject-after", 3));
  options.tuning.attainment_weight =
      flags.GetDouble("attainment-weight", 4.0);
  options.tuning.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  qsched::cluster::Router router(backends, options, &telemetry);
  std::unique_ptr<qsched::replay::TraceRecorder> recorder =
      qsched_examples::MaybeStartCapture(
          flags, flags.GetDouble("time-scale", 60.0), options.tuning.seed,
          &telemetry);
  if (recorder != nullptr) {
    router.set_on_offer(
        [rec = recorder.get()](const qsched::workload::Query& query) {
          rec->Record(query);
        });
  }
  router.Start();
  const size_t usable = router.pool().WaitUsable(backends.size(), 2.0);
  std::printf("cluster route: %zu/%zu backends usable\n", usable,
              backends.size());

  qsched::net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  server_options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 64));
  server_options.reactors =
      static_cast<int>(flags.GetInt("reactors", 0));
  qsched::net::Server front(&router, server_options, &telemetry);
  qsched::Status started = front.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "front server start failed: %s\n",
                 started.ToString().c_str());
    router.Stop();
    return 1;
  }
  std::printf("routing on 127.0.0.1:%u (%d reactors) -> %zu backends\n",
              static_cast<unsigned>(front.port()), front.reactors(),
              backends.size());
  std::fflush(stdout);
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << front.port() << "\n";
  }

  std::unique_ptr<qsched::obs::HttpServer> http;
  if (flags.Has("http-port")) {
    qsched::obs::HttpServerOptions http_options;
    http_options.port =
        static_cast<uint16_t>(flags.GetInt("http-port", 0));
    http = std::make_unique<qsched::obs::HttpServer>(http_options);
    qsched::obs::InstallRegistryHandlers(http.get(),
                                         &telemetry.registry);
    qsched::cluster::Router* router_ptr = &router;
    qsched::obs::InstallHealthHandler(http.get(), [router_ptr] {
      if (router_ptr->shutting_down()) return std::string("draining");
      // The router serves as long as at least one backend is usable.
      for (const auto& snap : router_ptr->pool().Snapshots()) {
        if (snap.connected) return std::string("accepting");
      }
      return std::string("draining");
    });
    http->AddHandler("/statusz", [router_ptr] {
      return qsched::obs::HttpResponse{
          200, "text/plain; charset=utf-8", router_ptr->StatuszTable()};
    });
    qsched::Status http_started = http->Start();
    if (!http_started.ok()) {
      std::fprintf(stderr, "http server start failed: %s\n",
                   http_started.ToString().c_str());
      http.reset();
    } else {
      std::printf("http observability on 127.0.0.1:%u "
                  "(/metrics /varz /healthz /statusz)\n",
                  static_cast<unsigned>(http->port()));
      std::fflush(stdout);
      const std::string http_port_file =
          flags.GetString("http-port-file", "");
      if (!http_port_file.empty()) {
        std::ofstream out(http_port_file);
        out << http->port() << "\n";
      }
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= duration) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Front first: its drain needs the channels alive to relay the last
  // verdicts and completions. Then the router resolves whatever is
  // still in flight and checks conservation.
  front.Stop();
  router.Stop();
  if (http != nullptr) http->Stop();
  qsched_examples::StopCapture(recorder.get(), nullptr);

  const qsched::cluster::RouterAccounting acc = router.Accounting();
  std::printf(
      "CLUSTER seed=%llu offered=%llu accepted=%llu rejected_relayed=%llu "
      "rejected_unroutable=%llu completions=%llu cancelled=%llu "
      "failovers=%llu retries=%llu\n",
      static_cast<unsigned long long>(options.tuning.seed),
      static_cast<unsigned long long>(acc.offered),
      static_cast<unsigned long long>(acc.accepted),
      static_cast<unsigned long long>(acc.rejected_relayed),
      static_cast<unsigned long long>(acc.rejected_unroutable),
      static_cast<unsigned long long>(acc.completions_relayed),
      static_cast<unsigned long long>(acc.cancelled_completions),
      static_cast<unsigned long long>(acc.failovers),
      static_cast<unsigned long long>(acc.retries));

  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (out) {
      telemetry.registry.WritePrometheus(out);
      std::printf("wrote %s (%zu metrics)\n", metrics_out.c_str(),
                  telemetry.registry.size());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
    }
  }

  if (!router.ConservationHolds()) {
    std::fprintf(stderr, "CONSERVATION VIOLATION (see CLUSTER line)\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.Has("help")) {
    std::printf(
        "usage: cluster_cli --mode=route "
        "--backends=HOST:PORT[,HOST:PORT...]\n"
        "                   [--port=N] [--duration=SECONDS] "
        "[--max-attempts=N]\n"
        "                   [--probe-interval=S] [--eject-after=N] "
        "[--http-port=N]\n");
    return 0;
  }
  const std::string mode = flags.GetString("mode", "route");
  if (mode == "route") return RunRoute(flags);
  std::fprintf(stderr, "unknown --mode=%s (route)\n", mode.c_str());
  return 1;
}
