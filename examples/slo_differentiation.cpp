// SLO differentiation scenario: the same workload run three times with
// different OLTP objectives, showing how the SLO itself — not a static
// priority — steers resource allocation. Tighter OLTP goals squeeze the
// OLAP classes harder; a lax goal lets OLAP run nearly unthrottled.
#include <cstdio>

#include "harness/experiment.h"

namespace {

void RunWithOltpGoal(double goal_seconds) {
  using namespace qsched;
  harness::ExperimentConfig config;
  config.seed = 33;

  sched::ServiceClassSet classes = sched::MakePaperClasses();
  // Rebuild class 3 with the requested response-time ceiling.
  sched::ServiceClassSet adjusted;
  for (const sched::ServiceClassSpec& spec : classes.classes()) {
    sched::ServiceClassSpec copy = spec;
    if (copy.class_id == 3) copy.goal_value = goal_seconds;
    adjusted.Add(copy);
  }
  config.classes = adjusted;

  // Steady heavy mix so differences come from the SLO alone.
  workload::WorkloadSchedule schedule(300.0, {1, 2, 3});
  for (int p = 0; p < 4; ++p) schedule.AddPeriod({4, 4, 25});
  config.schedule = schedule;

  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kQueryScheduler);

  double olap_limit = 0.0;
  for (int cls : {1, 2}) {
    // Mean over the settled second half of the run.
    const auto& limits = result.period_mean_limits.at(cls);
    olap_limit += (limits[2] + limits[3]) / 2.0;
  }
  std::printf("%11.2f  %13.3f  %12.0f  %11.3f  %11.3f\n", goal_seconds,
              result.overall_response.at(3), olap_limit,
              result.overall_velocity.at(1),
              result.overall_velocity.at(2));
}

}  // namespace

int main() {
  std::printf("OLTP SLO sweep under a constant heavy mixed workload\n");
  std::printf("oltp_goal_s  oltp_resp_avg  olap_limit_t  class1_vel  "
              "class2_vel\n");
  for (double goal : {0.15, 0.25, 0.50, 1.00}) {
    RunWithOltpGoal(goal);
  }
  std::printf("\ntighter goals -> smaller OLAP cost limits -> slower "
              "OLAP, faster OLTP\n");
  return 0;
}
