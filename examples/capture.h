// --capture-trace support shared by the serving CLIs (rt_cli serve-style
// runs, net_cli --mode=serve, cluster_cli --mode=route): builds a
// replay::TraceRecorder from flags, and assembles the live-run summary
// segment from the scheduler's state at shutdown.
//
// Flags:
//   --capture-trace=PATH    record every offered query to PATH
//   --capture-rotate-mb=N   rotate to PATH.1, PATH.2, ... above N MB (0)
//   --capture-buffer=N      per-producer-thread buffer records (8192)
#ifndef QSCHED_EXAMPLES_CAPTURE_H_
#define QSCHED_EXAMPLES_CAPTURE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "obs/telemetry.h"
#include "replay/recorder.h"
#include "scheduler/query_scheduler.h"
#include "scheduler/service_class.h"
#include "scheduler/utility.h"

namespace qsched_examples {

/// Builds and starts a trace recorder when --capture-trace=PATH is set;
/// returns nullptr otherwise (and on open failure, which is reported).
/// `time_scale` and `seed` are stamped into the trace header.
inline std::unique_ptr<qsched::replay::TraceRecorder> MaybeStartCapture(
    const qsched::FlagParser& flags, double time_scale, uint64_t seed,
    qsched::obs::Telemetry* telemetry) {
  const std::string path = flags.GetString("capture-trace", "");
  if (path.empty()) return nullptr;
  qsched::replay::RecorderOptions options;
  options.writer.path = path;
  options.writer.rotate_bytes = static_cast<uint64_t>(
      flags.GetDouble("capture-rotate-mb", 0.0) * 1e6);
  options.writer.header.time_scale = time_scale;
  options.writer.header.seed = seed;
  options.buffer_records =
      static_cast<size_t>(flags.GetInt("capture-buffer", 8192));
  auto recorder = std::make_unique<qsched::replay::TraceRecorder>(
      options, telemetry);
  qsched::Status started = recorder->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "trace capture disabled: %s\n",
                 started.ToString().c_str());
    return nullptr;
  }
  std::printf("capturing trace to %s\n", path.c_str());
  return recorder;
}

/// The live-run context for the trailing summary segment: per class, the
/// scheduler's latest accepted measurement, the SLO monitor's rolling
/// attainment, and the live plan's cost limit; plus total utility under
/// the default utility function (the same one the shadow planner scores
/// candidates with, so WHATIF lines compare like with like).
inline qsched::replay::TraceSummary MakeCaptureSummary(
    const qsched::sched::QuerySchedulerConfig& config,
    qsched::sched::QueryScheduler* scheduler,
    const qsched::sched::ServiceClassSet& classes,
    qsched::obs::Telemetry* telemetry) {
  qsched::replay::TraceSummary summary;
  summary.control_interval_seconds = config.control_interval_seconds;
  summary.system_cost_limit = config.system_cost_limit;
  summary.allocator =
      config.allocator ==
              qsched::sched::QuerySchedulerConfig::Allocator::kGreedyAuction
          ? 1u
          : 0u;
  const qsched::sched::UtilityFunction utility;
  for (const qsched::sched::ServiceClassSpec& spec : classes.classes()) {
    qsched::replay::TraceSummaryClass cls;
    cls.class_id = static_cast<uint32_t>(spec.class_id);
    auto it = scheduler->measurements().find(spec.class_id);
    cls.measured = it != scheduler->measurements().end() ? it->second : 0.0;
    cls.attainment = telemetry != nullptr
                         ? telemetry->slo.RollingAttainment(spec.class_id)
                         : 0.0;
    cls.cost_limit = scheduler->current_plan().LimitFor(spec.class_id);
    summary.total_utility +=
        cls.measured > 0.0 ? utility.Evaluate(spec, cls.measured)
                           : utility.FromGoalRatio(spec, 0.0);
    summary.classes.push_back(cls);
  }
  return summary;
}

/// Stops the recorder (no-op on nullptr), writes `summary` when given,
/// and prints the capture accounting line.
inline void StopCapture(qsched::replay::TraceRecorder* recorder,
                        const qsched::replay::TraceSummary* summary) {
  if (recorder == nullptr) return;
  qsched::Status stopped = recorder->Stop(summary);
  if (!stopped.ok()) {
    std::fprintf(stderr, "trace capture stop: %s\n",
                 stopped.ToString().c_str());
  }
  std::printf("CAPTURE captured=%llu dropped=%llu segments=%llu "
              "bytes=%llu\n",
              static_cast<unsigned long long>(recorder->captured()),
              static_cast<unsigned long long>(recorder->dropped()),
              static_cast<unsigned long long>(
                  recorder->writer() != nullptr
                      ? recorder->writer()->segments_written()
                      : 0),
              static_cast<unsigned long long>(
                  recorder->writer() != nullptr
                      ? recorder->writer()->bytes_written()
                      : 0));
}

}  // namespace qsched_examples

#endif  // QSCHED_EXAMPLES_CAPTURE_H_
