// Command-line experiment runner: the whole harness behind flags, with
// optional CSV export of the figure series and the raw query trace.
//
//   ./build/examples/experiment_cli --controller=query-scheduler \
//       --seed=7 --period-seconds=600 --system-cost-limit=300000 \
//       --velocity-csv=/tmp/velocity.csv --summary
//
// Observability exports (each enables telemetry for the run):
//   --trace-out=PATH    Chrome trace_event JSON of per-query spans
//                       (load in Perfetto / chrome://tracing)
//   --metrics-out=PATH  Prometheus text exposition of the registry
//   --audit-out=PATH    planner decision audit trail as JSONL, followed
//                       by the SLO violation events ("type":"slo_violation")
//   --timeseries-csv=PATH  per-control-interval table (long-format CSV)
//   --predictions-csv=PATH prediction-vs-actual ledger records
//   --report-html=PATH  self-contained HTML run report with inline-SVG
//                       charts (cost limits, velocity/response vs. goals,
//                       SLO attainment, model residuals)
//
// Replicated mode: --replications=N repeats the run across derived
// seeds and prints mean +/- stddev per period; --jobs=J (0 = one per
// hardware thread) fans the replicas out across worker threads with
// byte-identical aggregates.
//
// Controllers: no-control | qp-static | qp-priority | query-scheduler |
//              mpl | qs-direct-oltp
#include <cstdio>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/html_report.h"
#include "harness/replication.h"
#include "metrics/trace_writer.h"
#include "obs/telemetry.h"

namespace {

using qsched::harness::ControllerKind;

bool ParseController(const std::string& name, ControllerKind* kind) {
  if (name == "no-control") {
    *kind = ControllerKind::kNoControl;
  } else if (name == "qp-static") {
    *kind = ControllerKind::kQpNoPriority;
  } else if (name == "qp-priority") {
    *kind = ControllerKind::kQpPriority;
  } else if (name == "query-scheduler") {
    *kind = ControllerKind::kQueryScheduler;
  } else if (name == "mpl") {
    *kind = ControllerKind::kMpl;
  } else if (name == "qs-direct-oltp") {
    *kind = ControllerKind::kQsDirectOltp;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.Has("help")) {
    std::printf(
        "flags: --controller=NAME --seed=N --period-seconds=S\n"
        "       --system-cost-limit=T --control-interval=S\n"
        "       --proactive --velocity-csv=PATH --response-csv=PATH\n"
        "       --trace-csv=PATH --summary\n"
        "       --trace-out=PATH (Chrome trace JSON of query spans)\n"
        "       --metrics-out=PATH (Prometheus text exposition)\n"
        "       --audit-out=PATH (planner decision + SLO-violation JSONL)\n"
        "       --timeseries-csv=PATH (per-control-interval table)\n"
        "       --predictions-csv=PATH (prediction-vs-actual ledger)\n"
        "       --report-html=PATH (self-contained HTML run report)\n"
        "       --replications=N (repeat across seeds, mean +/- stddev)\n"
        "       --jobs=J (worker threads for replicas; 0 = hardware)\n");
    return 0;
  }

  ControllerKind kind = ControllerKind::kQueryScheduler;
  std::string controller =
      flags.GetString("controller", "query-scheduler");
  if (!ParseController(controller, &kind)) {
    std::fprintf(stderr, "unknown controller: %s\n", controller.c_str());
    return 2;
  }

  qsched::harness::ExperimentConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.period_seconds = flags.GetDouble("period-seconds", 600.0);
  config.system_cost_limit =
      flags.GetDouble("system-cost-limit", 300000.0);
  config.qs.control_interval_seconds =
      flags.GetDouble("control-interval", 60.0);
  config.qs.proactive_planning = flags.GetBool("proactive", false);
  std::string trace_csv = flags.GetString("trace-csv", "");
  config.capture_trace = !trace_csv.empty();

  std::string trace_out = flags.GetString("trace-out", "");
  std::string metrics_out = flags.GetString("metrics-out", "");
  std::string audit_out = flags.GetString("audit-out", "");
  std::string timeseries_csv = flags.GetString("timeseries-csv", "");
  std::string predictions_csv = flags.GetString("predictions-csv", "");
  std::string report_html = flags.GetString("report-html", "");
  qsched::obs::Telemetry telemetry;
  bool telemetry_on = !trace_out.empty() || !metrics_out.empty() ||
                      !audit_out.empty() || !timeseries_csv.empty() ||
                      !predictions_csv.empty() || !report_html.empty();
  if (telemetry_on) config.telemetry = &telemetry;

  int replications = static_cast<int>(flags.GetInt("replications", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 1));
  if (replications > 1) {
    // Replicated mode: aggregate figure series across seeds. Replicas
    // run with telemetry off (see ReplicationOptions); the registry
    // still receives per-replica wall-clock / events-per-second gauges.
    qsched::harness::ReplicationOptions options;
    options.jobs = jobs;
    if (telemetry_on) options.telemetry = &telemetry;
    if (!report_html.empty() || !timeseries_csv.empty() ||
        !predictions_csv.empty()) {
      // Replicas run with control-loop telemetry off, so there is no
      // per-interval record to export in this mode.
      std::fprintf(stderr,
                   "--report-html/--timeseries-csv/--predictions-csv "
                   "need a single run; ignored with --replications>1\n");
    }
    qsched::harness::ReplicatedResult replicated =
        qsched::harness::RunReplicated(config, kind, replications,
                                       options);
    std::printf("controller=%s periods=%d seed=%llu replications=%d "
                "jobs=%d\n",
                ControllerKindToString(kind), replicated.num_periods,
                static_cast<unsigned long long>(config.seed), replications,
                jobs);
    std::printf("period  v1                v2                t3\n");
    for (int p = 0; p < replicated.num_periods; ++p) {
      std::printf(
          "%6d  %5.3f +/- %5.3f  %5.3f +/- %5.3f  %5.3f +/- %5.3f\n",
          p + 1, replicated.velocity.at(1).mean[p],
          replicated.velocity.at(1).stddev[p],
          replicated.velocity.at(2).mean[p],
          replicated.velocity.at(2).stddev[p],
          replicated.response.at(3).mean[p],
          replicated.response.at(3).stddev[p]);
    }
    if (flags.Has("summary")) {
      for (const auto& [cls, mean] : replicated.goal_periods_mean) {
        std::printf("class %d: %.1f +/- %.1f of %d periods met\n", cls,
                    mean, replicated.goal_periods_stddev.at(cls),
                    replicated.num_periods);
      }
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     metrics_out.c_str());
        return 1;
      }
      telemetry.registry.WritePrometheus(out);
      std::printf("wrote %s (%zu metrics)\n", metrics_out.c_str(),
                  telemetry.registry.size());
    }
    return 0;
  }

  qsched::harness::ExperimentResult result =
      qsched::harness::RunExperiment(config, kind);

  std::printf("controller=%s periods=%d seed=%llu\n",
              ControllerKindToString(kind), result.num_periods,
              static_cast<unsigned long long>(config.seed));
  std::printf("period  v1     v2     t3\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %.3f  %.3f  %.3f\n", p + 1,
                result.velocity_series.at(1)[p],
                result.velocity_series.at(2)[p],
                result.response_series.at(3)[p]);
  }
  if (flags.Has("summary")) {
    for (const auto& [cls, met] : result.periods_meeting_goal) {
      std::printf("class %d: %d/%d periods met\n", cls, met,
                  result.num_periods);
    }
    std::printf("cpu_util=%.2f disk_util=%.2f completed=%llu\n",
                result.cpu_utilization, result.disk_utilization,
                static_cast<unsigned long long>(result.total_completed));
  }

  std::string velocity_csv = flags.GetString("velocity-csv", "");
  if (!velocity_csv.empty()) {
    std::ofstream out(velocity_csv);
    qsched::metrics::WriteSeriesCsv(result.velocity_series, "velocity",
                                    out);
    std::printf("wrote %s\n", velocity_csv.c_str());
  }
  std::string response_csv = flags.GetString("response-csv", "");
  if (!response_csv.empty()) {
    std::ofstream out(response_csv);
    qsched::metrics::WriteSeriesCsv(result.response_series, "response",
                                    out);
    std::printf("wrote %s\n", response_csv.c_str());
  }
  if (!trace_csv.empty() && result.trace != nullptr) {
    std::ofstream out(trace_csv);
    qsched::metrics::WriteQueryRecordsCsv(*result.trace, out);
    std::printf("wrote %s (%zu records, %llu dropped)\n",
                trace_csv.c_str(), result.trace->size(),
                static_cast<unsigned long long>(result.trace->dropped()));
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   trace_out.c_str());
      return 1;
    }
    telemetry.spans.WriteChromeTrace(out);
    std::printf("wrote %s (%llu spans, %llu dropped)\n", trace_out.c_str(),
                static_cast<unsigned long long>(
                    telemetry.spans.closed_total()),
                static_cast<unsigned long long>(
                    telemetry.spans.dropped()));
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    telemetry.registry.WritePrometheus(out);
    std::printf("wrote %s (%zu metrics)\n", metrics_out.c_str(),
                telemetry.registry.size());
  }
  if (!audit_out.empty()) {
    std::ofstream out(audit_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   audit_out.c_str());
      return 1;
    }
    telemetry.audit.WriteJsonl(out);
    // SLO violation events share the stream, tagged
    // "type":"slo_violation" so audit readers can filter them.
    telemetry.slo.WriteEventsJsonl(out);
    std::printf("wrote %s (%zu records, %zu violation events, "
                "%llu dropped)\n",
                audit_out.c_str(), telemetry.audit.size(),
                telemetry.slo.Events().size(),
                static_cast<unsigned long long>(
                    telemetry.audit.dropped()));
  }
  if (!timeseries_csv.empty()) {
    std::ofstream out(timeseries_csv);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   timeseries_csv.c_str());
      return 1;
    }
    telemetry.recorder.WriteCsv(out);
    std::printf("wrote %s (%zu intervals, %llu dropped)\n",
                timeseries_csv.c_str(), telemetry.recorder.size(),
                static_cast<unsigned long long>(
                    telemetry.recorder.dropped()));
  }
  if (!predictions_csv.empty()) {
    std::ofstream out(predictions_csv);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   predictions_csv.c_str());
      return 1;
    }
    telemetry.ledger.WriteCsv(out);
    std::printf("wrote %s (%zu predictions, %llu dropped)\n",
                predictions_csv.c_str(), telemetry.ledger.size(),
                static_cast<unsigned long long>(
                    telemetry.ledger.dropped()));
  }
  if (!report_html.empty()) {
    std::ofstream out(report_html);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   report_html.c_str());
      return 1;
    }
    qsched::harness::HtmlReportOptions report_options;
    report_options.title =
        std::string("qsched run report: ") +
        ControllerKindToString(kind);
    qsched::sched::ServiceClassSet classes =
        config.classes.has_value() ? *config.classes
                                   : qsched::sched::MakePaperClasses();
    qsched::harness::WriteHtmlRunReport(result, classes, &telemetry,
                                        report_options, out);
    std::printf("wrote %s\n", report_html.c_str());
  }
  return 0;
}
