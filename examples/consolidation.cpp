// Server-consolidation scenario (the paper's motivating trend): four
// tenants with competing objectives share one DBMS —
//   * "finance"   — OLAP, most important analytics tenant
//   * "marketing" — OLAP, best-effort analytics tenant
//   * "orders"    — OLTP order entry with a strict latency SLO
//   * "reports"   — OLAP batch reporting, lowest importance
// Exercises the scheduler beyond the paper's 3-class setup (4 classes
// means the solver's hill-climbing stage does the work, not the grid).
#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace qsched;

  harness::ExperimentConfig config;
  config.seed = 21;

  // Custom service classes: ids are arbitrary but must match the
  // schedule's class ids.
  sched::ServiceClassSet classes;
  sched::ServiceClassSpec finance;
  finance.class_id = 1;
  finance.name = "finance";
  finance.type = workload::WorkloadType::kOlap;
  finance.goal_kind = sched::GoalKind::kVelocityFloor;
  finance.goal_value = 0.6;
  finance.importance = 2;
  classes.Add(finance);

  sched::ServiceClassSpec marketing;
  marketing.class_id = 2;
  marketing.name = "marketing";
  marketing.type = workload::WorkloadType::kOlap;
  marketing.goal_kind = sched::GoalKind::kVelocityFloor;
  marketing.goal_value = 0.4;
  marketing.importance = 1;
  classes.Add(marketing);

  sched::ServiceClassSpec orders;
  orders.class_id = 3;
  orders.name = "orders";
  orders.type = workload::WorkloadType::kOltp;
  orders.goal_kind = sched::GoalKind::kAvgResponseCeiling;
  orders.goal_value = 0.25;
  orders.importance = 3;
  classes.Add(orders);

  sched::ServiceClassSpec reports;
  reports.class_id = 4;
  reports.name = "reports";
  reports.type = workload::WorkloadType::kOlap;
  reports.goal_kind = sched::GoalKind::kVelocityFloor;
  reports.goal_value = 0.2;
  reports.importance = 1;
  classes.Add(reports);
  config.classes = classes;

  // A business day in six compressed periods: analytics ramps up while
  // order entry peaks mid-day.
  workload::WorkloadSchedule schedule(300.0, {1, 2, 3, 4});
  schedule.AddPeriod({2, 2, 15, 1});
  schedule.AddPeriod({3, 2, 20, 1});
  schedule.AddPeriod({3, 3, 25, 2});
  schedule.AddPeriod({4, 3, 25, 2});
  schedule.AddPeriod({3, 2, 20, 3});
  schedule.AddPeriod({2, 2, 15, 3});
  config.schedule = schedule;

  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kQueryScheduler);

  std::printf("Consolidated tenants under Query Scheduler\n");
  std::printf("period  finance_vel  marketing_vel  orders_resp  "
              "reports_vel\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %11.3f  %13.3f  %10.3fs  %11.3f\n", p + 1,
                result.velocity_series.at(1)[p],
                result.velocity_series.at(2)[p],
                result.response_series.at(3)[p],
                result.velocity_series.at(4)[p]);
  }
  std::printf("\ncost limits chosen per period (timerons):\n");
  std::printf("period  finance  marketing  orders  reports\n");
  for (int p = 0; p < result.num_periods; ++p) {
    std::printf("%6d  %7.0f  %9.0f  %6.0f  %7.0f\n", p + 1,
                result.period_mean_limits.at(1)[p],
                result.period_mean_limits.at(2)[p],
                result.period_mean_limits.at(3)[p],
                result.period_mean_limits.at(4)[p]);
  }
  std::printf("\nSLOs met: finance %d/6, marketing %d/6, orders %d/6, "
              "reports %d/6\n",
              result.periods_meeting_goal.at(1),
              result.periods_meeting_goal.at(2),
              result.periods_meeting_goal.at(3),
              result.periods_meeting_goal.at(4));
  return 0;
}
