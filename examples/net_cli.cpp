// Network mode CLI: the real-time Query Scheduler behind a TCP front-end.
//
// Serve: runs the rt::Runtime with a net::Server bound to --port and
// keeps it up for --duration wall seconds (0 = until SIGINT/SIGTERM),
// then drains and prints the conservation accounting.
//
//   net_cli --mode=serve --port=4750 --duration=10 [options]
//
// Netload: the remote load generator — N client connections submitting
// the TPC-H/TPC-C mix open-loop at --qps total, then draining. Exits
// nonzero when conservation is violated (a lost or duplicated query).
//
//   net_cli --mode=netload --target=127.0.0.1:4750 --connections=4
//           --qps=2000 --duration=2
//
// Shared options:
//   --seed=N             RNG seed (42)
//   --pattern=NAME       constant | bursty | diurnal (constant)
//   --metrics-out=PATH   Prometheus text exposition of the registry
//
// Serve options:
//   --port=N             TCP port (0 = ephemeral, printed + --port-file)
//   --port-file=PATH     write the bound port as a single line
//   --max-connections=N  concurrent connection cap (64)
//   --reactors=N         reactor threads multiplexing connections
//                        (0 = auto: min(4, hardware_concurrency))
//   --time-scale=X       model seconds per wall second (60)
//   --workers=N          gateway worker threads (2)
//   --queue-capacity=N   submission queue bound (4096)
//   --admit-batch=N      max queries admitted per core-lock entry
//                        (0 = default 32)
//   --cost-limit=X       scheduler system cost limit in timerons
//                        (300000); lower it to throttle OLAP admission
//   --capture-trace=PATH record every offered query to a replay trace
//                        (see replay_cli); a summary of the live run's
//                        measured performance is appended at shutdown
//   --capture-rotate-mb=N  rotate the trace above N MB (0 = never)
//   --capture-buffer=N   per-producer capture buffer records (8192)
//   --report-html=PATH   self-contained HTML run report
//   --http-port=N        embedded observability HTTP server: GET
//                        /metrics, /varz, /healthz, /statusz (0 =
//                        ephemeral, printed + --http-port-file; omit
//                        the flag to disable)
//   --http-port-file=PATH  write the bound HTTP port as a single line
//
// Netload options:
//   --target=HOST:PORT   server address (127.0.0.1:4750)
//   --connections=N      client connections, one thread each (4)
//   --qps=N              total offered rate across connections (2000)
//   --duration=SECONDS   generation phase length (2)
//   --tpch-scale=X       TPC-H scale factor for OLAP draws (0.05)
//   --pipeline           pipelined submission: batch SUBMITs per
//                        connection instead of blocking per verdict
//   --max-outstanding=N  pipeline depth bound per connection (128)
//   --inject-malformed=N also fire N malformed frames at the server and
//                        require it to survive them (0)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "capture.h"
#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/html_report.h"
#include "http_obs.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/telemetry.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool ParseTarget(const std::string& target, std::string* host,
                 uint16_t* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    return false;
  }
  *host = target.substr(0, colon);
  try {
    const int parsed = std::stoi(target.substr(colon + 1));
    if (parsed <= 0 || parsed > 65535) return false;
    *port = static_cast<uint16_t>(parsed);
  } catch (...) {
    return false;
  }
  return true;
}

void MaybeWriteMetrics(const qsched::FlagParser& flags,
                       qsched::obs::Telemetry* telemetry) {
  const std::string path = flags.GetString("metrics-out", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  telemetry->registry.WritePrometheus(out);
  std::printf("wrote %s (%zu metrics)\n", path.c_str(),
              telemetry->registry.size());
}

int RunServe(const qsched::FlagParser& flags) {
  const double duration = flags.GetDouble("duration", 0.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  qsched::obs::Telemetry telemetry;
  qsched::rt::RuntimeOptions options;
  options.time_scale = flags.GetDouble("time-scale", 60.0);
  options.horizon_model_seconds = 3600.0 * 24.0;
  options.seed = seed;
  options.gateway.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 4096));
  options.gateway.workers = static_cast<int>(flags.GetInt("workers", 2));
  options.gateway.admit_batch_size =
      static_cast<size_t>(flags.GetInt("admit-batch", 0));
  options.scheduler.system_cost_limit =
      flags.GetDouble("cost-limit", options.scheduler.system_cost_limit);
  options.telemetry = &telemetry;

  qsched::sched::ServiceClassSet classes =
      qsched::sched::MakePaperClasses();
  qsched::rt::Runtime runtime(classes, options);
  std::unique_ptr<qsched::replay::TraceRecorder> recorder =
      qsched_examples::MaybeStartCapture(flags, options.time_scale, seed,
                                         &telemetry);
  if (recorder != nullptr) {
    runtime.gateway().set_on_offer(
        [rec = recorder.get()](const qsched::workload::Query& query) {
          rec->Record(query);
        });
  }
  runtime.Start();

  qsched::net::ServerOptions server_options;
  server_options.port =
      static_cast<uint16_t>(flags.GetInt("port", 0));
  server_options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 64));
  server_options.reactors =
      static_cast<int>(flags.GetInt("reactors", 0));
  qsched::net::Server server(&runtime.gateway(), server_options,
                             &telemetry);
  qsched::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u (%d reactors)\n",
              static_cast<unsigned>(server.port()), server.reactors());
  std::fflush(stdout);
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }
  std::unique_ptr<qsched::obs::HttpServer> http =
      qsched_examples::MaybeStartHttpObs(
          flags, &runtime.gateway(), &telemetry,
          "qsched live status: network front-end");

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= duration) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  qsched::rt::Runtime::Stats stats = runtime.Shutdown();
  // Stop the observability server after the drain so a scraper polling
  // /healthz can watch accepting -> draining -> stopped.
  if (http != nullptr) http->Stop();
  if (recorder != nullptr) {
    const qsched::replay::TraceSummary summary =
        qsched_examples::MakeCaptureSummary(options.scheduler,
                                            &runtime.scheduler(), classes,
                                            &telemetry);
    qsched_examples::StopCapture(recorder.get(), &summary);
  }

  std::printf(
      "serve done: connections %llu (refused %llu), frames in %llu / "
      "out %llu, protocol errors %llu\n",
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(server.connections_refused()),
      static_cast<unsigned long long>(server.frames_received()),
      static_cast<unsigned long long>(server.frames_sent()),
      static_cast<unsigned long long>(server.protocol_errors()));
  std::printf(
      "submits accepted %llu, rejected %llu; completions delivered %llu, "
      "dropped %llu; gateway completed %llu%s\n",
      static_cast<unsigned long long>(server.submits_accepted()),
      static_cast<unsigned long long>(server.submits_rejected()),
      static_cast<unsigned long long>(server.completions_delivered()),
      static_cast<unsigned long long>(server.completions_dropped()),
      static_cast<unsigned long long>(stats.completed),
      stats.drained ? "" : "  [drain timeout!]");

  MaybeWriteMetrics(flags, &telemetry);
  const std::string report_html = flags.GetString("report-html", "");
  if (!report_html.empty()) {
    std::ofstream out(report_html);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", report_html.c_str());
      return 1;
    }
    qsched::harness::ExperimentResult result;
    result.controller = qsched::harness::ControllerKind::kQueryScheduler;
    result.total_completed = stats.completed;
    result.engine_queries_completed = runtime.engine().queries_completed();
    for (const qsched::sched::ServiceClassSpec& spec : classes.classes()) {
      result.interval_attainment[spec.class_id] =
          telemetry.slo.RollingAttainment(spec.class_id);
    }
    qsched::harness::HtmlReportOptions report_options;
    report_options.title = "qsched run report: network front-end";
    qsched::harness::WriteHtmlRunReport(result, classes, &telemetry,
                                        report_options, out);
    std::printf("wrote %s\n", report_html.c_str());
  }

  // Conservation: every accepted submit produced exactly one completion
  // frame, delivered or (client gone) consciously dropped.
  const bool conserved =
      server.submits_accepted() ==
      server.completions_delivered() + server.completions_dropped();
  if (!conserved) {
    std::fprintf(stderr, "CONSERVATION VIOLATION: accepted %llu != "
                         "delivered %llu + dropped %llu\n",
                 static_cast<unsigned long long>(server.submits_accepted()),
                 static_cast<unsigned long long>(
                     server.completions_delivered()),
                 static_cast<unsigned long long>(
                     server.completions_dropped()));
  }
  return conserved && stats.drained ? 0 : 2;
}

int RunNetload(const qsched::FlagParser& flags) {
  std::string host;
  uint16_t port = 0;
  const std::string target =
      flags.GetString("target", "127.0.0.1:4750");
  if (!ParseTarget(target, &host, &port)) {
    std::fprintf(stderr, "malformed --target=%s\n", target.c_str());
    return 1;
  }

  qsched::net::RemoteLoadOptions options;
  options.connections =
      static_cast<int>(flags.GetInt("connections", 4));
  options.qps = flags.GetDouble("qps", 2000.0);
  options.duration_wall_seconds = flags.GetDouble("duration", 2.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.tpch_scale_factor = flags.GetDouble("tpch-scale", 0.05);
  options.pipeline = flags.Has("pipeline");
  options.max_outstanding =
      static_cast<int>(flags.GetInt("max-outstanding", 128));
  const std::string pattern_name =
      flags.GetString("pattern", "constant");
  if (!qsched::rt::ArrivalPatternFromString(pattern_name,
                                            &options.pattern)) {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern_name.c_str());
    return 1;
  }

  qsched::obs::Telemetry telemetry;
  qsched::net::RemoteLoadGenerator loadgen(host, port, options,
                                           &telemetry);
  std::printf(
      "netload: %s, %d connections%s, %.0f qps (%s) for %.1f s\n",
      target.c_str(), options.connections,
      options.pipeline ? " (pipelined)" : "", options.qps,
      pattern_name.c_str(), options.duration_wall_seconds);
  const auto start = std::chrono::steady_clock::now();
  qsched::Status run = loadgen.Run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "netload failed: %s\n", run.ToString().c_str());
    return 1;
  }

  const int inject =
      static_cast<int>(flags.GetInt("inject-malformed", 0));
  if (inject > 0) {
    qsched::Status injected = qsched::net::InjectMalformedFrames(
        host, port, inject, options.seed);
    if (!injected.ok()) {
      std::fprintf(stderr, "malformed-frame injection: %s\n",
                   injected.ToString().c_str());
      return 1;
    }
    std::printf("injected %d malformed frames; server survived\n",
                inject);
  }

  const qsched::obs::Histogram* rtt =
      telemetry.registry.GetHistogram("qsched_net_rtt_seconds");
  const uint64_t rejected = loadgen.rejected_queue_full() +
                            loadgen.rejected_shutting_down() +
                            loadgen.rejected_backend_unavailable();
  // Sustained rate counts the feed phase only; the drain tail (waiting
  // out the last executions) is reported separately.
  const double feed = loadgen.feed_seconds();
  const double rate =
      feed > 0.0 ? static_cast<double>(loadgen.offered()) / feed : 0.0;
  std::printf(
      "NETLOAD seed=%llu offered=%llu accepted=%llu rejected=%llu "
      "completed=%llu lost=%llu unmatched=%llu wall=%.2f feed=%.2f "
      "drain=%.2f rate=%.1f rtt_p50_us=%.0f rtt_p99_us=%.0f\n",
      static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(loadgen.offered()),
      static_cast<unsigned long long>(loadgen.accepted()),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(loadgen.completed()),
      static_cast<unsigned long long>(loadgen.lost_completions()),
      static_cast<unsigned long long>(loadgen.unmatched_completions()),
      wall, feed, loadgen.drain_seconds(), rate,
      rtt->Quantile(0.5) * 1e6, rtt->Quantile(0.99) * 1e6);

  MaybeWriteMetrics(flags, &telemetry);

  // Conservation: offered splits exactly into accepted + rejected, every
  // accepted query completed exactly once, nothing lost or duplicated.
  const bool conserved =
      loadgen.offered() == loadgen.accepted() + rejected &&
      loadgen.completed() == loadgen.accepted() &&
      loadgen.lost_completions() == 0 &&
      loadgen.unmatched_completions() == 0;
  if (!conserved) {
    std::fprintf(stderr, "CONSERVATION VIOLATION (see NETLOAD line)\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.Has("help")) {
    std::printf(
        "usage: net_cli --mode=serve [--port=N] [--duration=SECONDS]\n"
        "       net_cli --mode=netload --target=HOST:PORT "
        "[--connections=N]\n"
        "               [--qps=N] [--duration=SECONDS] "
        "[--inject-malformed=N]\n");
    return 0;
  }
  const std::string mode = flags.GetString("mode", "serve");
  if (mode == "serve") return RunServe(flags);
  if (mode == "netload") return RunNetload(flags);
  std::fprintf(stderr, "unknown --mode=%s (serve | netload)\n",
               mode.c_str());
  return 1;
}
