// Real-time mode CLI: runs the paper's Query Scheduler stack on the wall
// clock — a live gateway fed by an open-loop load generator, concurrent
// gateway workers, and a timer-driven control loop — instead of the DES.
//
// Usage:
//   rt_cli --mode=rt --qps=800 --duration=5 [options]
//
// Options:
//   --qps=N              mean offered load, queries per wall second (800)
//   --duration=SECONDS   wall-clock generation phase length (5)
//   --classes=SPEC       class_id:weight mix, e.g. 1:3,2:3,3:94 (default)
//                        over the paper classes (1, 2 = OLAP, 3 = OLTP)
//   --pattern=NAME       constant | bursty | diurnal (constant)
//   --time-scale=X       model seconds per wall second (60)
//   --control-interval=S control interval in model seconds (15)
//   --workers=N          gateway worker threads (2)
//   --queue-capacity=N   submission queue bound (4096)
//   --admit-batch=N      max queries admitted per core-lock entry
//                        (0 = default 32)
//   --tpch-scale=X       TPC-H scale factor for the OLAP classes (0.1;
//                        larger scans stretch the post-run drain)
//   --seed=N             RNG seed for the load draws (42)
//   --capture-trace=PATH record every offered query to a replay trace
//                        (see replay_cli); a summary of the live run's
//                        measured performance is appended at shutdown
//   --capture-rotate-mb=N  rotate the trace above N MB (0 = never)
//   --capture-buffer=N   per-producer capture buffer records (8192)
//   --metrics-out=PATH   Prometheus text exposition of the registry
//   --audit-out=PATH     planner decision audit trail as JSONL
//   --report-html=PATH   self-contained HTML run report
//   --http-port=N        embedded observability HTTP server: GET
//                        /metrics, /varz, /healthz, /statusz (0 =
//                        ephemeral, printed + --http-port-file; omit
//                        the flag to disable)
//   --http-port-file=PATH  write the bound HTTP port as a single line

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capture.h"
#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/html_report.h"
#include "http_obs.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/loadgen.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace {

// Parses "1:3,2:3,3:94" into class_id -> weight.
bool ParseClassMix(const std::string& spec,
                   std::map<int, double>* weights) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = item.find(':');
    if (colon == std::string::npos) return false;
    try {
      int class_id = std::stoi(item.substr(0, colon));
      double weight = std::stod(item.substr(colon + 1));
      if (weight < 0.0) return false;
      (*weights)[class_id] = weight;
    } catch (...) {
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !weights->empty();
}

}  // namespace

int main(int argc, char** argv) {
  qsched::FlagParser flags;
  qsched::Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.Has("help")) {
    std::printf(
        "usage: rt_cli --mode=rt [--qps=N] [--duration=SECONDS]\n"
        "       [--classes=1:3,2:3,3:94] "
        "[--pattern=constant|bursty|diurnal]\n"
        "       [--time-scale=X] [--control-interval=S] [--workers=N]\n"
        "       [--queue-capacity=N] [--admit-batch=N] [--seed=N]\n"
        "       [--metrics-out=PATH] [--audit-out=PATH] "
        "[--report-html=PATH]\n");
    return 0;
  }

  std::string mode = flags.GetString("mode", "rt");
  if (mode != "rt") {
    std::fprintf(stderr,
                 "unknown --mode=%s (this binary runs the real-time "
                 "gateway; use experiment_cli for DES runs)\n",
                 mode.c_str());
    return 1;
  }

  double qps = flags.GetDouble("qps", 800.0);
  double duration = flags.GetDouble("duration", 5.0);
  double time_scale = flags.GetDouble("time-scale", 60.0);
  std::string pattern_name = flags.GetString("pattern", "constant");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  qsched::rt::ArrivalPattern pattern;
  if (!qsched::rt::ArrivalPatternFromString(pattern_name, &pattern)) {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern_name.c_str());
    return 1;
  }
  std::map<int, double> mix = {{1, 3.0}, {2, 3.0}, {3, 94.0}};
  std::string classes_spec = flags.GetString("classes", "");
  if (!classes_spec.empty()) {
    mix.clear();
    if (!ParseClassMix(classes_spec, &mix)) {
      std::fprintf(stderr, "malformed --classes=%s\n",
                   classes_spec.c_str());
      return 1;
    }
  }

  qsched::obs::Telemetry telemetry;
  qsched::rt::RuntimeOptions options;
  options.time_scale = time_scale;
  options.horizon_model_seconds =
      std::max(3600.0, 2.0 * duration * time_scale);
  options.seed = seed;
  options.gateway.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 4096));
  options.gateway.workers = static_cast<int>(flags.GetInt("workers", 2));
  options.gateway.admit_batch_size =
      static_cast<size_t>(flags.GetInt("admit-batch", 0));
  options.scheduler.control_interval_seconds =
      flags.GetDouble("control-interval", 15.0);
  options.telemetry = &telemetry;

  qsched::sched::ServiceClassSet classes =
      qsched::sched::MakePaperClasses();
  for (const auto& [class_id, weight] : mix) {
    if (classes.Find(class_id) == nullptr) {
      std::fprintf(stderr, "--classes names unknown class %d\n", class_id);
      return 1;
    }
    (void)weight;
  }

  qsched::rt::Runtime runtime(classes, options);
  std::unique_ptr<qsched::replay::TraceRecorder> recorder =
      qsched_examples::MaybeStartCapture(flags, time_scale, seed,
                                         &telemetry);
  if (recorder != nullptr) {
    runtime.gateway().set_on_offer(
        [rec = recorder.get()](const qsched::workload::Query& query) {
          rec->Record(query);
        });
  }
  runtime.Start();
  std::unique_ptr<qsched::obs::HttpServer> http =
      qsched_examples::MaybeStartHttpObs(
          flags, &runtime.gateway(), &telemetry,
          "qsched live status: real-time gateway");

  // One generator instance per OLAP class (independent streams), one
  // TPC-C stream for OLTP.
  qsched::workload::TpchWorkloadParams tpch;
  tpch.scale_factor = flags.GetDouble("tpch-scale", 0.1);
  qsched::workload::TpccWorkloadParams tpcc;
  std::vector<std::unique_ptr<qsched::workload::QueryGenerator>> owned;
  std::vector<qsched::rt::LoadSource> sources;
  for (const auto& [class_id, weight] : mix) {
    if (weight <= 0.0) continue;
    const qsched::sched::ServiceClassSpec* spec = classes.Find(class_id);
    if (spec->type == qsched::workload::WorkloadType::kOlap) {
      owned.push_back(std::make_unique<qsched::workload::TpchWorkload>(
          tpch, seed + static_cast<uint64_t>(class_id)));
    } else {
      owned.push_back(std::make_unique<qsched::workload::TpccWorkload>(
          tpcc, seed + static_cast<uint64_t>(class_id)));
    }
    sources.push_back({owned.back().get(), class_id, weight});
  }

  qsched::rt::LoadGenOptions load;
  load.pattern = pattern;
  load.qps = qps;
  load.duration_wall_seconds = duration;
  load.seed = seed;
  qsched::rt::LoadGenerator loadgen(&runtime.gateway(),
                                    std::move(sources), load, &telemetry);
  std::printf("rt mode: %.0f qps (%s) for %.1f s wall, time scale %.0fx, "
              "control interval %.0f model s\n",
              qps, pattern_name.c_str(), duration, time_scale,
              options.scheduler.control_interval_seconds);
  loadgen.Start();
  loadgen.Join();
  qsched::rt::Runtime::Stats stats = runtime.Shutdown();
  if (http != nullptr) http->Stop();
  if (recorder != nullptr) {
    const qsched::replay::TraceSummary summary =
        qsched_examples::MakeCaptureSummary(options.scheduler,
                                            &runtime.scheduler(), classes,
                                            &telemetry);
    qsched_examples::StopCapture(recorder.get(), &summary);
  }

  std::printf("seed %llu: offered %llu, shed %llu, completed %llu "
              "(%.0f completions/s wall), planning cycles %llu, "
              "model horizon %.1f s%s\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(loadgen.offered()),
              static_cast<unsigned long long>(loadgen.shed()),
              static_cast<unsigned long long>(stats.completed),
              stats.model_seconds > 0.0
                  ? static_cast<double>(stats.completed) /
                        (stats.model_seconds / time_scale)
                  : 0.0,
              static_cast<unsigned long long>(stats.planning_cycles),
              stats.model_seconds,
              stats.drained ? "" : "  [drain timeout!]");
  for (const qsched::sched::ServiceClassSpec& spec : classes.classes()) {
    std::printf("  class %d (%s): attainment %.2f\n", spec.class_id,
                spec.name.c_str(),
                telemetry.slo.RollingAttainment(spec.class_id));
  }

  std::string metrics_out = flags.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    telemetry.registry.WritePrometheus(out);
    std::printf("wrote %s (%zu metrics)\n", metrics_out.c_str(),
                telemetry.registry.size());
  }
  std::string audit_out = flags.GetString("audit-out", "");
  if (!audit_out.empty()) {
    std::ofstream out(audit_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", audit_out.c_str());
      return 1;
    }
    telemetry.audit.WriteJsonl(out);
    telemetry.slo.WriteEventsJsonl(out);
    std::printf("wrote %s (%zu records)\n", audit_out.c_str(),
                telemetry.audit.size());
  }
  std::string report_html = flags.GetString("report-html", "");
  if (!report_html.empty()) {
    std::ofstream out(report_html);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", report_html.c_str());
      return 1;
    }
    // Live runs have no per-period DES series; the report's
    // control-interval charts come from the shared telemetry.
    qsched::harness::ExperimentResult result;
    result.controller = qsched::harness::ControllerKind::kQueryScheduler;
    result.period_seconds = options.scheduler.control_interval_seconds;
    result.total_completed = stats.completed;
    result.engine_queries_completed =
        runtime.engine().queries_completed();
    result.cpu_utilization = runtime.engine().cpu_pool().Utilization();
    result.disk_utilization = runtime.engine().disk_array().Utilization();
    result.limit_history = runtime.scheduler().limit_history();
    result.oltp_model_slope = runtime.scheduler().oltp_model().slope();
    for (const qsched::sched::ServiceClassSpec& spec : classes.classes()) {
      result.interval_attainment[spec.class_id] =
          telemetry.slo.RollingAttainment(spec.class_id);
    }
    qsched::harness::HtmlReportOptions report_options;
    report_options.title = "qsched run report: real-time gateway";
    qsched::harness::WriteHtmlRunReport(result, classes, &telemetry,
                                        report_options, out);
    std::printf("wrote %s\n", report_html.c_str());
  }
  return stats.drained ? 0 : 2;
}
